"""Public facade for distributed workflow control."""

from __future__ import annotations

from typing import Any, Mapping

from repro.engines.base import ControlSystem, SystemConfig
from repro.engines.coord import SpecIndex
from repro.engines.distributed.roles import WorkflowAgentNode
from repro.errors import FrontEndError, SchemaError
from repro.model.compiler import CompiledSchema
from repro.model.coordination_spec import CoordinationSpec
from repro.storage.tables import InstanceStatus

__all__ = ["DistributedControlSystem"]


class DistributedControlSystem(ControlSystem):
    """Public facade for distributed workflow control (``z`` agents)."""

    architecture = "distributed"

    def __init__(
        self,
        config: SystemConfig | None = None,
        num_agents: int = 8,
        agents_per_step: int = 1,
        runtime=None,
    ):
        super().__init__(config, runtime=runtime)
        if num_agents < 1:
            raise SchemaError("distributed control needs at least one agent")
        self.agents_per_step = agents_per_step
        self.spec_index = SpecIndex()
        self.agents = [
            WorkflowAgentNode(f"agent-{i:03d}", self) for i in range(num_agents)
        ]
        self._owners: dict[str, str] = {}

    # -- wiring ---------------------------------------------------------------------

    def agent_names(self) -> list[str]:
        return [agent.name for agent in self.agents]

    def agent(self, name: str) -> WorkflowAgentNode:
        return next(a for a in self.agents if a.name == name)

    def _on_schema_registered(self, compiled: CompiledSchema) -> None:
        self.assignment.assign_round_robin(
            compiled, self.agent_names(), self.agents_per_step
        )
        # Every agent's AGDB carries the full (static) agent directory.
        for (schema_name, step), eligible in self.assignment.items():
            if schema_name != compiled.name:
                continue
            for agent in self.agents:
                agent.agdb.set_eligible_agents(schema_name, step, eligible)

    def _on_spec_added(self, spec: CoordinationSpec) -> None:
        self.spec_index.add(spec)
        authority = self.authority_agent_for(spec)
        self.agent(authority).authorities.host(spec)

    def authority_agent_for(self, spec: CoordinationSpec) -> str:
        """Deterministic authority placement: the first eligible agent of
        the spec's anchor step in ``schema_a``."""
        from repro.model.coordination_spec import (
            MutualExclusionSpec,
            RelativeOrderSpec,
            RollbackDependencySpec,
        )

        if isinstance(spec, RelativeOrderSpec):
            anchor = spec.steps_a[0]
        elif isinstance(spec, MutualExclusionSpec):
            anchor = spec.region_a[0]
        elif isinstance(spec, RollbackDependencySpec):
            anchor = spec.trigger_step_a
        else:  # pragma: no cover - defensive
            raise SchemaError(f"unknown spec type {type(spec)!r}")
        return self.assignment.eligible(spec.schema_a, anchor)[0]

    def coordination_agent_for(self, schema_name: str) -> WorkflowAgentNode:
        compiled = self.compiled(schema_name)
        name = self.assignment.eligible(schema_name, compiled.start_step)[0]
        return self.agent(name)

    def _note_owner(self, instance_id: str, node_name: str) -> None:
        self._owners[instance_id] = node_name

    # -- front-end database operations -------------------------------------------------

    def start_workflow(
        self, schema_name: str, inputs: Mapping[str, Any], delay: float = 0.0
    ) -> str:
        self.compiled(schema_name)
        instance_id = self.new_instance_id(schema_name)
        coordination_agent = self.coordination_agent_for(schema_name)
        self._note_owner(instance_id, coordination_agent.name)
        self.schedule_frontend(
            delay, coordination_agent, coordination_agent.workflow_start,
            schema_name, instance_id, dict(inputs),
        )
        return instance_id

    def _coordination_agent_of_instance(self, instance_id: str) -> WorkflowAgentNode:
        try:
            return self.agent(self._owners[instance_id])
        except KeyError:
            raise FrontEndError(f"unknown instance {instance_id!r}") from None

    def abort_workflow(self, instance_id: str, delay: float = 0.0) -> None:
        agent = self._coordination_agent_of_instance(instance_id)
        self.schedule_frontend(delay, agent, agent.workflow_abort, instance_id)

    def change_inputs(
        self, instance_id: str, changes: Mapping[str, Any], delay: float = 0.0
    ) -> None:
        agent = self._coordination_agent_of_instance(instance_id)
        self.schedule_frontend(
            delay, agent, agent.workflow_change_inputs, instance_id, dict(changes)
        )

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        return self._coordination_agent_of_instance(instance_id).workflow_status(
            instance_id
        )

    def probe_workflow(self, instance_id: str, delay: float = 0.0) -> None:
        """Launch the probe chain locating the instance's current steps."""
        agent = self._coordination_agent_of_instance(instance_id)
        self.schedule_frontend(
            delay, agent, agent.workflow_status_probe, instance_id
        )

    def probe_reports(self, instance_id: str) -> list[dict]:
        """Probe reports gathered at the instance's coordination agent."""
        return self._coordination_agent_of_instance(instance_id).probe_reports(
            instance_id
        )
