"""The distributed workflow agent: role composition and front-end WIs.

:class:`WorkflowAgentNode` assembles the protocol mixins — navigation,
commit, halting, failure handling, coordination — over the shared node
machinery.  This module owns the agent's durable/volatile state (AGDB,
runtimes, commit trackers), the front-end workflow interfaces
(WorkflowStart/Abort/Status/ChangeInputs), message dispatch, and
crash/recovery.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

from repro.core.coordination import mx_clearance_token, ro_clearance_token
from repro.core.interfaces import WI
from repro.engines.base import governed_step_count
from repro.engines.coord import AuthorityBundle
from repro.engines.distributed.commit import AgentCommitMixin, CommitTracker
from repro.engines.distributed.coordination import AgentCoordinationMixin
from repro.engines.distributed.failure import (
    VERB_PURGE,
    VERB_STATUS_PROBE,
    VERB_STATUS_PROBE_REPORT,
    VERB_STEP_STATUS_REPLY,
    VERB_UNHANDLED_FAILURE,
    AgentFailureMixin,
)
from repro.engines.distributed.halting import AgentHaltingMixin
from repro.engines.distributed.navigation import (
    VERB_NESTED_DONE,
    AgentNavigationMixin,
    elect_executor,
)
from repro.engines.runtime import AgentRuntime
from repro.errors import FrontEndError, SimulationError
from repro.model.compiler import CompiledSchema
from repro.obs.profile import profiled
from repro.rules.engine import RuleEngine
from repro.rules.events import WF_START
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message
from repro.runtime.node import Node
from repro.storage.agdb import AgentDatabase
from repro.storage.tables import InstanceStatus, StepStatus

__all__ = ["WorkflowAgentNode"]


class WorkflowAgentNode(
    AgentNavigationMixin,
    AgentCommitMixin,
    AgentHaltingMixin,
    AgentFailureMixin,
    AgentCoordinationMixin,
    Node,
):
    """A distributed workflow agent (execution/coordination/termination roles)."""

    def __init__(self, name: str, system: "DistributedControlSystem"):
        super().__init__(name, system.simulator, system.network)
        self.system = system
        self.config = system.config
        self.agdb = AgentDatabase(name)
        self.spec_index = system.spec_index
        self.authorities = AuthorityBundle()
        self.runtimes: dict[str, AgentRuntime] = {}
        self.trackers: dict[str, CommitTracker] = {}
        self._purge_pending: list[str] = []
        self._purge_scheduled = False
        self._load_probes: dict[int, dict] = {}
        self._probe_ids = itertools.count(1)
        self._seen_status_probes: set[tuple[str, int]] = set()
        self._probe_reports: dict[str, list[dict]] = {}

    # ------------------------------------------------------------------ wiring

    @property
    def trace(self):
        return self.system.trace

    def hosted_steps(self, compiled: CompiledSchema) -> frozenset[str]:
        hosted = set()
        for step in compiled.schema.steps:
            if self.name in self.agdb.eligible_agents(compiled.name, step):
                hosted.add(step)
        return frozenset(hosted)

    def _coordination_agent_of(self, compiled: CompiledSchema) -> str:
        return self.agdb.eligible_agents(compiled.name, compiled.start_step)[0]

    def _elect(self, compiled: CompiledSchema, instance_id: str, step: str) -> str:
        eligible = self.agdb.eligible_agents(compiled.name, step)
        if step == compiled.start_step:
            # Convention: the coordination agent executes the start step
            # ("typically the agent responsible for executing the first
            # step of the workflow").
            return eligible[0]
        return elect_executor(
            eligible, compiled.name, instance_id, step, is_up=self.network.is_up
        )

    # ------------------------------------------------------------------ runtimes

    def _runtime(
        self,
        schema_name: str,
        instance_id: str,
        inputs: Mapping[str, Any] | None = None,
        parent_link: tuple[str, str] | None = None,
    ) -> AgentRuntime:
        runtime = self.runtimes.get(instance_id)
        if runtime is not None:
            return runtime
        compiled = self.system.compiled(schema_name)
        fragment = self.agdb.ensure_fragment(schema_name, instance_id, inputs)
        hosted = self.hosted_steps(compiled)
        engine = RuleEngine(
            compiled,
            action=lambda rule, iid=instance_id: self._on_rule(iid, rule),
            env_provider=fragment.env,
            steps=hosted,
            fire_hook=self.system.rule_fire_hook(self.name, instance_id),
            profile=self.network.profile,
        )
        runtime = AgentRuntime(
            state=fragment,
            compiled=compiled,
            engine=engine,
            hosted=hosted,
            parent_link=parent_link,
            governed=governed_step_count(
                compiled, self.spec_index.specs_for(schema_name)
            ),
        )
        self.runtimes[instance_id] = runtime
        self._install_preconditions(runtime, instance_id)
        return runtime

    def _install_preconditions(self, runtime: AgentRuntime, instance_id: str) -> None:
        schema_name = runtime.fragment.schema_name
        for spec, pair_index, step in self.spec_index.ro_governed_pairs(schema_name):
            if pair_index >= 1 and step in runtime.hosted:
                runtime.engine.add_step_precondition(
                    step, ro_clearance_token(spec.name, pair_index, instance_id)
                )
        for spec in self.spec_index.mx_specs(schema_name):
            first, __ = spec.region_of(schema_name)
            if first in runtime.hosted:
                runtime.engine.add_step_precondition(
                    first, mx_clearance_token(spec.name, instance_id)
                )

    def _persist(self, runtime: AgentRuntime) -> None:
        runtime.fragment.events_snapshot = runtime.engine.events.export_versioned()
        self.agdb.persist_fragment(runtime.fragment)

    # ------------------------------------------------------------------ front-end WIs

    def workflow_start(
        self,
        schema_name: str,
        instance_id: str,
        inputs: Mapping[str, Any],
        parent_link: tuple[str, str] | None = None,
    ) -> None:
        """WorkflowStart WI (front-end database calls the coordination agent)."""
        compiled = self.system.compiled(schema_name)
        if self._coordination_agent_of(compiled) != self.name:
            raise FrontEndError(
                f"{self.name} is not the coordination agent for {schema_name!r}"
            )
        self.agdb.set_summary(instance_id, InstanceStatus.RUNNING)
        tracker = CommitTracker(parent_link=parent_link)
        self.trackers[instance_id] = tracker
        self.agdb.set_tracker(instance_id, tracker.snapshot())
        runtime = self._runtime(schema_name, instance_id, inputs, parent_link)
        self.system.obs_instance_started(
            instance_id, schema_name, self.name, self.simulator.now,
            parent_instance=parent_link[0] if parent_link else None,
        )
        self.system._note_owner(instance_id, self.name)
        self.trace.record(self.simulator.now, self.name, "workflow.start",
                          instance=instance_id, schema=schema_name)
        self.charge(1.0, Mechanism.NORMAL)
        # A mutual-exclusion region opening at the start step is acquired now.
        for spec in self.spec_index.mx_region_first(schema_name, compiled.start_step):
            self._mx_request(runtime, instance_id, spec)
        runtime.assigned[compiled.start_step] = self.name
        runtime.engine.post_event(WF_START, self.simulator.now,
                                  runtime.fragment.invalidation_round)

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        """WorkflowStatus WI, answered from the coordination summary table."""
        return self.agdb.summary(instance_id)

    def workflow_abort(self, instance_id: str) -> None:
        """WorkflowAbort WI at the coordination agent."""
        status = self.agdb.summary(instance_id)
        if status is InstanceStatus.COMMITTED:
            # "any request for aborting the workflow ... after a workflow
            # commit will be rejected."
            self.trace.record(self.simulator.now, self.name, "abort.rejected",
                              instance=instance_id, reason="committed")
            return
        if status is InstanceStatus.ABORTED:
            return
        tracker = self.trackers.get(instance_id)
        runtime = self.runtimes.get(instance_id)
        if runtime is None or tracker is None:
            raise FrontEndError(f"unknown instance {instance_id!r}")
        compiled = runtime.compiled
        schema = compiled.schema
        self.trace.record(self.simulator.now, self.name, "workflow.abort.request",
                          instance=instance_id)
        self.charge(1.0, Mechanism.ABORT)
        # Compensate the abort-compensation steps: the coordination agent
        # "may have to send messages to all eligible agents" since it does
        # not know which eligible agent executed each step.
        for step in schema.abort_compensation_steps:
            for agent in self.agdb.eligible_agents(schema.name, step):
                payload = {
                    "schema_name": schema.name,
                    "instance_id": instance_id,
                    "step": step,
                    "kind": "complete",
                    "reason": "abort",
                }
                if agent == self.name:
                    self._on_step_compensate_local(payload, Mechanism.ABORT)
                else:
                    self.send(agent, WI.STEP_COMPENSATE.value, payload, Mechanism.ABORT)
        # Halt every thread starting from the first step.
        epoch = runtime.fragment.recovery_epoch + 1
        self.system.obs_recovery_started(
            instance_id, self.name, self.simulator.now, origin=None,
            epoch=epoch, mechanism="abort",
        )
        self._halt_from(runtime, instance_id, compiled.start_step, epoch,
                        Mechanism.ABORT, include_origin_agent=True)
        tracker.finished = True
        self.agdb.set_tracker(instance_id, tracker.snapshot())
        self.agdb.set_summary(instance_id, InstanceStatus.ABORTED)
        runtime.fragment.status = InstanceStatus.ABORTED
        self._persist(runtime)
        self._withdraw_coordination(instance_id, runtime, aborted=True)
        self.system._record_outcome(
            instance_id, schema.name, InstanceStatus.ABORTED, {}, self.simulator.now
        )
        self.trace.record(self.simulator.now, self.name, "workflow.aborted",
                          instance=instance_id)

    def workflow_change_inputs(
        self, instance_id: str, changes: Mapping[str, Any]
    ) -> None:
        """WorkflowChangeInputs WI at the coordination agent."""
        status = self.agdb.summary(instance_id)
        if status is not InstanceStatus.RUNNING:
            self.trace.record(self.simulator.now, self.name,
                              "change_inputs.rejected",
                              instance=instance_id, reason=status.value)
            return
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            raise FrontEndError(f"unknown instance {instance_id!r}")
        compiled = runtime.compiled
        self.charge(1.0, Mechanism.INPUT_CHANGE)
        changed_refs = {f"WF.{name}" for name in changes}
        origin = None
        for step in compiled.graph.topo_order:
            if changed_refs.intersection(compiled.schema.steps[step].inputs):
                origin = step
                break
        self.trace.record(self.simulator.now, self.name, "workflow.change_inputs",
                          instance=instance_id, origin=origin or "-")
        runtime.fragment.apply_input_changes(changes)
        runtime.input_overrides.update(
            {f"WF.{name}": value for name, value in changes.items()}
        )
        self._persist(runtime)
        if origin is None:
            return
        target = runtime.executors.get(origin) or self._elect(
            compiled, instance_id, origin
        )
        payload = {
            "schema_name": compiled.name,
            "instance_id": instance_id,
            "origin": origin,
            "epoch": runtime.fragment.recovery_epoch + 1,
            "changes": dict(changes),
        }
        if target == self.name:
            self._on_inputs_changed_local(payload)
        else:
            self.send(target, WI.INPUTS_CHANGED.value, payload, Mechanism.INPUT_CHANGE)

    # ------------------------------------------------------------------ messaging

    def handle_message(self, message: Message) -> None:
        self.charge(1.0, message.mechanism)
        handlers = {
            WI.WORKFLOW_START.value: self._on_workflow_start_msg,
            WI.STEP_EXECUTE.value: self._on_step_execute,
            WI.STEP_COMPLETED.value: self._on_step_completed,
            WI.WORKFLOW_ROLLBACK.value: self._on_workflow_rollback,
            WI.HALT_THREAD.value: self._on_halt_thread,
            WI.COMPENSATE_SET.value: self._on_compensate_set,
            WI.COMPENSATE_THREAD.value: self._on_compensate_thread,
            WI.STEP_COMPENSATE.value: self._on_step_compensate,
            WI.STEP_STATUS.value: self._on_step_status,
            WI.INPUTS_CHANGED.value: self._on_inputs_changed,
            WI.ADD_RULE.value: self._on_add_rule,
            WI.ADD_EVENT.value: self._on_add_event,
            WI.ADD_PRECONDITION.value: self._on_add_precondition,
            WI.STATE_INFORMATION.value: self._on_state_information,
            VERB_STEP_STATUS_REPLY: self._on_step_status_reply,
            "StateInformationReply": self._on_state_information_reply,
            VERB_STATUS_PROBE: self._on_status_probe,
            VERB_STATUS_PROBE_REPORT: self._on_status_probe_report,
            VERB_PURGE: self._on_purge,
            VERB_UNHANDLED_FAILURE: self._on_unhandled_failure,
            VERB_NESTED_DONE: self._on_nested_done,
        }
        handler = handlers.get(message.interface)
        if handler is None:
            raise SimulationError(
                f"agent {self.name} cannot handle {message.interface!r}"
            )
        handler(message)

    def _on_workflow_start_msg(self, message: Message) -> None:
        payload = message.payload
        parent_link = payload.get("parent_link")
        self.workflow_start(
            payload["schema_name"],
            payload["instance_id"],
            payload["inputs"],
            parent_link=tuple(parent_link) if parent_link else None,
        )

    # ------------------------------------------------------------------ crash/recovery

    def on_crash(self) -> None:
        self.runtimes.clear()
        # Commit trackers are volatile too; they rebuild from re-reports.
        # (Summaries are durable in the AGDB.)

    @profiled("recovery.replay")
    def on_recover(self) -> None:
        """Rebuild fragments from the AGDB WAL and resume.

        Completed local steps re-fire through the rule engine and take the
        OCR REUSE path, which re-sends their workflow packets — an
        idempotent repair for anything lost in the crash.
        """
        self.agdb.recover()
        for fragment in self.agdb.fragments():
            if fragment.status is not InstanceStatus.RUNNING:
                continue
            instance_id = fragment.instance_id
            compiled = self.system.compiled(fragment.schema_name)
            hosted = self.hosted_steps(compiled)
            engine = RuleEngine(
                compiled,
                action=lambda rule, iid=instance_id: self._on_rule(iid, rule),
                env_provider=fragment.env,
                steps=hosted,
                fire_hook=self.system.rule_fire_hook(self.name, instance_id),
                profile=self.network.profile,
            )
            runtime = AgentRuntime(
                state=fragment,
                compiled=compiled,
                engine=engine,
                hosted=hosted,
                governed=governed_step_count(
                    compiled, self.spec_index.specs_for(fragment.schema_name)
                ),
            )
            for record in fragment.steps.values():
                if record.status is StepStatus.RUNNING and record.agent == self.name:
                    record.status = StepStatus.NOT_STARTED
                if record.agent is not None:
                    runtime.executors[record.step] = record.agent
            self.runtimes[instance_id] = runtime
            self._install_preconditions(runtime, instance_id)
            # Re-coordinating instances: restore the tracker from its last
            # persisted snapshot — terminal reports consumed before the
            # crash are never re-sent, so a bare skeleton would wedge the
            # commit protocol forever.
            if self.agdb.has_summary(instance_id):
                snapshot = self.agdb.recovered_tracker(instance_id)
                if snapshot is not None:
                    self.trackers[instance_id] = CommitTracker.from_snapshot(snapshot)
                else:
                    self.trackers.setdefault(instance_id, CommitTracker())
            engine.merge_events(fragment.events_snapshot, self.simulator.now)
            # The fragment's invalidation cutoffs survived the crash; re-apply
            # them so a stale packet arriving now cannot revive an event that
            # a rollback already invalidated.
            engine.apply_invalidations(fragment.known_invalidations)
        self.trace.record(self.simulator.now, self.name, "agent.recovered",
                          fragments=len(self.runtimes))
