"""Distributed workflow control (paper Sections 4 and 5).

No central engine: the agents that execute steps also schedule and
coordinate the workflow instances.  Per instance:

* the **coordination agent** — the (first) agent eligible for the start
  step — handles WorkflowStart/Abort/Status/ChangeInputs, tracks terminal
  step completions (StepCompleted) and commits the workflow;
* **execution agents** navigate by exchanging *workflow packets* carrying
  the accumulated data/event state; every eligible agent of a successor
  step receives the packet ("in the case of an if-then-else branching ...
  the workflow packet is sent to the two agents"), which yields the
  paper's ``s·a + f`` normal-execution message count per instance;
* **termination agents** (those executing terminal steps) report to the
  coordination agent via StepCompleted.

The package splits the agent along its protocol boundaries:

* :mod:`~repro.engines.distributed.navigation` — packet forwarding,
  successor dispatch and :func:`elect_executor` leader election;
* :mod:`~repro.engines.distributed.commit` — the terminal-profile commit
  protocol at the coordination agent;
* :mod:`~repro.engines.distributed.halting` — WorkflowRollback/HaltThread
  probes, event invalidation and CompensateSet/Thread chains;
* :mod:`~repro.engines.distributed.failure` — StepStatus polling, crash
  watchdogs, status-probe chains and the purge broadcast;
* :mod:`~repro.engines.distributed.coordination` — inter-workflow
  authority protocols (relative order, mutual exclusion, rollback
  dependency);
* :mod:`~repro.engines.distributed.roles` — the
  :class:`WorkflowAgentNode` composition, front-end WIs, dispatch and
  crash/recovery;
* :mod:`~repro.engines.distributed.system` — the
  :class:`DistributedControlSystem` facade.
"""

from repro.engines.distributed.commit import AgentCommitMixin, CommitTracker
from repro.engines.distributed.coordination import AgentCoordinationMixin
from repro.engines.distributed.failure import (
    VERB_PURGE,
    VERB_STATUS_PROBE,
    VERB_STATUS_PROBE_REPORT,
    VERB_STEP_STATUS_REPLY,
    VERB_UNHANDLED_FAILURE,
    AgentFailureMixin,
)
from repro.engines.distributed.halting import AgentHaltingMixin
from repro.engines.distributed.navigation import (
    VERB_NESTED_DONE,
    AgentNavigationMixin,
    elect_executor,
)
from repro.engines.distributed.roles import WorkflowAgentNode
from repro.engines.distributed.system import DistributedControlSystem

__all__ = [
    "AgentCommitMixin",
    "AgentCoordinationMixin",
    "AgentFailureMixin",
    "AgentHaltingMixin",
    "AgentNavigationMixin",
    "CommitTracker",
    "DistributedControlSystem",
    "VERB_NESTED_DONE",
    "VERB_PURGE",
    "VERB_STATUS_PROBE",
    "VERB_STATUS_PROBE_REPORT",
    "VERB_STEP_STATUS_REPLY",
    "VERB_UNHANDLED_FAILURE",
    "WorkflowAgentNode",
    "elect_executor",
]
