"""Inter-workflow coordination duties of a distributed agent.

Coordination specs (relative ordering, mutual exclusion, rollback
dependency) are hosted by *authority agents*; every agent both reports
conflicting-step completions to the authorities of the specs it touches
and, when it is itself an authority, resolves those reports into
AddEvent clearance grants, mutex handoffs and dependent rollbacks.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.coordination import mx_clearance_token
from repro.core.interfaces import WI
from repro.engines.coord import SpecIndex
from repro.engines.runtime import AgentRuntime
from repro.errors import SimulationError
from repro.model.coordination_spec import CoordinationSpec
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message

__all__ = ["AgentCoordinationMixin"]


class AgentCoordinationMixin:
    """Coordination behavior of :class:`~repro.engines.distributed.WorkflowAgentNode`."""

    def _coord_on_step_done(
        self, runtime: AgentRuntime, instance_id: str, step: str
    ) -> None:
        schema_name = runtime.fragment.schema_name
        for spec, pair_index in self.spec_index.ro_roles(schema_name, step):
            payload = {
                "op": "ro_report",
                "spec": spec.name,
                "schema": schema_name,
                "instance_id": instance_id,
                "pair_index": pair_index,
                "key": SpecIndex.conflict_key_value(spec, runtime.fragment),
                # Leadership is decided by when the conflicting step
                # *executed*, not when its report reaches the authority.
                "time": self.simulator.now,
            }
            self._to_authority(spec, payload)
        for spec in self.spec_index.mx_region_last(schema_name, step):
            self._mx_release(runtime, instance_id, spec)
        for spec in self.spec_index.rd_targets(schema_name, step):
            payload = {
                "op": "rd_report",
                "spec": spec.name,
                "instance_id": instance_id,
                "key": SpecIndex.conflict_key_value(spec, runtime.fragment),
            }
            self._to_authority(spec, payload)

    def _to_authority(self, spec: CoordinationSpec, payload: dict[str, Any]) -> None:
        authority = self.system.authority_agent_for(spec)
        self.system.obs_coordination(
            payload.get("instance_id"), self.name, self.simulator.now,
            payload["op"], spec_name=spec.name, authority=authority,
        )
        if authority == self.name:
            self._apply_authority_op(payload)
        else:
            self.send(authority, WI.ADD_RULE.value, payload, Mechanism.COORDINATION)

    def _mx_request(
        self, runtime: AgentRuntime, instance_id: str, spec: CoordinationSpec
    ) -> None:
        current = runtime.mx_state.get(spec.name, "none")
        if current in ("requested", "held"):
            return
        runtime.mx_state[spec.name] = "requested"
        payload = {
            "op": "mx_request",
            "spec": spec.name,
            "schema": runtime.fragment.schema_name,
            "instance_id": instance_id,
            "key": SpecIndex.conflict_key_value(spec, runtime.fragment),
            "reply_to": self.name,
        }
        self._to_authority(spec, payload)

    def _mx_release(
        self, runtime: AgentRuntime, instance_id: str, spec: CoordinationSpec
    ) -> None:
        payload = {
            "op": "mx_release",
            "spec": spec.name,
            "schema": runtime.fragment.schema_name,
            "instance_id": instance_id,
            "key": SpecIndex.conflict_key_value(spec, runtime.fragment),
        }
        runtime.mx_state[spec.name] = "released"
        self._to_authority(spec, payload)

    # ------------------------------------------------------------------ authority side

    def _on_add_rule(self, message: Message) -> None:
        self._apply_authority_op(dict(message.payload))

    def _apply_authority_op(self, payload: dict[str, Any]) -> None:
        op = payload["op"]
        if op == "ro_report":
            self._apply_ro_report(payload)
        elif op == "mx_request":
            self._apply_mx_request(payload)
        elif op == "mx_release":
            self._apply_mx_release(payload)
        elif op == "rd_report":
            authority = self.authorities.rd[payload["spec"]]
            authority.report_target_executed(payload["instance_id"], payload["key"])
        elif op == "rd_trigger":
            self._apply_rd_trigger(payload)
        elif op == "withdraw":
            self._apply_withdraw(payload)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown authority op {op!r}")

    def _apply_ro_report(self, payload: dict[str, Any]) -> None:
        authority = self.authorities.ro[payload["spec"]]
        instance_id = payload["instance_id"]
        time = payload.get("time", self.simulator.now)
        grants = authority.report_completion(
            payload["schema"], instance_id, payload["pair_index"], payload["key"],
            order_key=(time, instance_id),
        )
        if payload["pair_index"] == 0:
            # Defer this registrant's clearance requests by two network
            # latencies: a report of an *earlier* first-pair completion is
            # at most one latency away, so by then leadership is settled.
            self.simulator.schedule(
                2 * self.config.latency + 0.001,
                self._ro_request_clearances,
                payload["spec"], payload["schema"], instance_id, payload["key"],
            )
        self._deliver_ro_grants(authority, grants)

    def _ro_request_clearances(
        self, spec_name: str, schema_name: str, instance_id: str, key
    ) -> None:
        authority = self.authorities.ro[spec_name]
        grants = []
        for later in range(1, len(authority.spec.steps_a)):
            grant = authority.request_clearance(schema_name, instance_id, later, key)
            if grant is not None:
                grants.append(grant)
        self._deliver_ro_grants(authority, grants)

    def _deliver_ro_grants(self, authority, grants) -> None:
        pairs = authority.established_pairs()
        for grant in grants:
            spec = authority.spec
            step = spec.ordered_steps(grant.schema)[grant.pair_index]
            orders = [
                [spec.name, leading, lagging]
                for leading, lagging in pairs
                if grant.instance in (leading, lagging)
            ]
            self._send_grant(grant.schema, grant.instance, step, grant.token,
                             orders=orders)

    def _send_grant(
        self, schema_name: str, instance_id: str, step: str, token: str,
        orders: list | None = None,
    ) -> None:
        """AddEvent WI: deliver a clearance token to the eligible agents of
        the governed step (piggybacking any established leading/lagging
        pairs — the Figure 7 "R.O." lines)."""
        payload = {
            "schema_name": schema_name,
            "instance_id": instance_id,
            "token": token,
            "orders": orders or [],
        }
        for agent in self.agdb.eligible_agents(schema_name, step):
            if agent == self.name:
                self._apply_add_event(payload)
            else:
                self.send(agent, WI.ADD_EVENT.value, payload, Mechanism.COORDINATION)

    def _on_add_event(self, message: Message) -> None:
        self._apply_add_event(message.payload)

    def _apply_add_event(self, payload: Mapping[str, Any]) -> None:
        instance_id = payload["instance_id"]
        runtime = self._runtime(payload["schema_name"], instance_id)
        if payload["token"].startswith("EXT.MX."):
            spec_name = payload["token"].split(".")[2]
            runtime.mx_state[spec_name] = "held"
        for spec_name, leading, lagging in payload.get("orders", ()):
            runtime.ro_info.add((spec_name, leading, lagging))
        runtime.engine.add_event(payload["token"], self.simulator.now)

    def _on_add_precondition(self, message: Message) -> None:
        payload = message.payload
        runtime = self._runtime(payload["schema_name"], payload["instance_id"])
        runtime.engine.add_step_precondition(payload["step"], payload["token"])

    def _apply_mx_request(self, payload: dict[str, Any]) -> None:
        authority = self.authorities.mx[payload["spec"]]
        granted = authority.acquire(
            payload["schema"], payload["instance_id"], payload["key"]
        )
        if granted:
            spec = authority.spec
            first, __ = spec.region_of(payload["schema"])
            self._send_grant(
                payload["schema"], payload["instance_id"], first,
                mx_clearance_token(spec.name, payload["instance_id"]),
            )

    def _apply_mx_release(self, payload: dict[str, Any]) -> None:
        authority = self.authorities.mx[payload["spec"]]
        grantee = authority.release(
            payload["schema"], payload["instance_id"], payload["key"]
        )
        if grantee is not None:
            schema_name, instance_id = grantee
            spec = authority.spec
            first, __ = spec.region_of(schema_name)
            self._send_grant(
                schema_name, instance_id, first,
                mx_clearance_token(spec.name, instance_id),
            )

    def _apply_rd_trigger(self, payload: dict[str, Any]) -> None:
        authority = self.authorities.rd[payload["spec"]]
        spec = authority.spec
        for dependent in authority.dependents_of(
            payload["instance_id"], payload["key"]
        ):
            compiled = self.system.compiled(spec.schema_b)
            target = self._elect(compiled, dependent, spec.rollback_to_b)
            rollback_payload = {
                "schema_name": spec.schema_b,
                "instance_id": dependent,
                "origin": spec.rollback_to_b,
                "failed_step": None,
                "epoch": -1,  # resolved at the target from its fragment
                "mechanism": Mechanism.FAILURE.value,
                "from_rd": True,
            }
            self.trace.record(self.simulator.now, self.name, "rollback.dependency",
                              trigger=payload["instance_id"], dependent=dependent,
                              spec=spec.name)
            if target == self.name:
                self._apply_dependent_rollback(rollback_payload)
            else:
                self.send(target, WI.WORKFLOW_ROLLBACK.value, rollback_payload,
                          Mechanism.FAILURE)

    def _apply_dependent_rollback(self, payload: dict[str, Any]) -> None:
        runtime = self.runtimes.get(payload["instance_id"])
        epoch = (runtime.fragment.recovery_epoch + 1) if runtime is not None else 1
        self._apply_workflow_rollback({**payload, "epoch": epoch})

    def _withdraw_coordination(
        self, instance_id: str, runtime: AgentRuntime | None, aborted: bool
    ) -> None:
        if runtime is None:
            return
        schema_name = runtime.fragment.schema_name
        for spec in self.spec_index.mx_specs(schema_name):
            if runtime.mx_state.get(spec.name) in ("held", "requested"):
                self._mx_release(runtime, instance_id, spec)
        for spec in self.spec_index.rd:
            if spec.schema_b == schema_name:
                self._to_authority(spec, {
                    "op": "withdraw", "spec": spec.name, "instance_id": instance_id,
                    "kind": "rd",
                })
        if aborted:
            for spec in self.spec_index.ro:
                if spec.involves(schema_name):
                    self._to_authority(spec, {
                        "op": "withdraw", "spec": spec.name,
                        "instance_id": instance_id, "kind": "ro",
                    })

    def _apply_withdraw(self, payload: dict[str, Any]) -> None:
        spec_name = payload["spec"]
        instance_id = payload["instance_id"]
        if payload["kind"] == "rd":
            authority = self.authorities.rd.get(spec_name)
            if authority is not None:
                authority.withdraw(instance_id)
            return
        authority_ro = self.authorities.ro.get(spec_name)
        if authority_ro is not None:
            for grant in authority_ro.withdraw(instance_id):
                step = authority_ro.spec.ordered_steps(grant.schema)[grant.pair_index]
                self._send_grant(grant.schema, grant.instance, step, grant.token)
