"""Agent failure detection and repair (paper Section 6).

Step failures route a WorkflowRollback() to the rollback origin's agent
(or an UnhandledFailure abort to the coordination agent).  Crashed-peer
handling uses StepStatus polling, eligible-peer watchdogs (query steps
relocate via :func:`elect_executor`; update steps wait for recovery) and
the paper's chain-of-probe status location.  Committed instances are
garbage-collected with a batched purge broadcast.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.interfaces import WI
from repro.engines.distributed.navigation import elect_executor
from repro.engines.runtime import member_done_times
from repro.model.schema import StepType
from repro.obs.profile import profiled
from repro.rules.events import step_done
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message
from repro.storage.tables import InstanceStatus, StepStatus

__all__ = [
    "AgentFailureMixin",
    "VERB_PURGE",
    "VERB_STATUS_PROBE",
    "VERB_STATUS_PROBE_REPORT",
    "VERB_STEP_STATUS_REPLY",
    "VERB_UNHANDLED_FAILURE",
]

VERB_STEP_STATUS_REPLY = "StepStatusReply"
VERB_STATUS_PROBE = "WorkflowStatusProbe"
VERB_STATUS_PROBE_REPORT = "WorkflowStatusProbeReport"
VERB_PURGE = "PurgeNotice"
VERB_UNHANDLED_FAILURE = "UnhandledFailure"


class AgentFailureMixin:
    """Failure-handling behavior of :class:`~repro.engines.distributed.WorkflowAgentNode`."""

    # ------------------------------------------------------------------ step failure

    @profiled("recovery.ocr")
    def _handle_failure(self, instance_id: str, failed_step: str) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        compiled = runtime.compiled
        origin = compiled.schema.rollback_origin(failed_step)
        if origin is None:
            # Unhandled failure: tell the coordination agent to abort.
            coordination_agent = self._coordination_agent_of(compiled)
            payload = {
                "schema_name": compiled.name,
                "instance_id": instance_id,
                "failed_step": failed_step,
                "executors": dict(runtime.executors),
                "done_times": member_done_times(
                    runtime.engine, runtime.fragment,
                    frozenset(compiled.schema.steps),
                ),
            }
            if coordination_agent == self.name:
                self._apply_unhandled_failure(payload)
            else:
                self.send(coordination_agent, VERB_UNHANDLED_FAILURE, payload,
                          Mechanism.FAILURE)
            return
        new_epoch = runtime.fragment.recovery_epoch + 1
        target = runtime.executors.get(origin) or self._elect(
            compiled, instance_id, origin
        )
        payload = {
            "schema_name": compiled.name,
            "instance_id": instance_id,
            "origin": origin,
            "failed_step": failed_step,
            "epoch": new_epoch,
            "mechanism": Mechanism.FAILURE.value,
        }
        self.trace.record(self.simulator.now, self.name, "rollback.request",
                          instance=instance_id, origin=origin, target=target)
        if target == self.name:
            self._apply_workflow_rollback(payload)
        else:
            self.send(target, WI.WORKFLOW_ROLLBACK.value, payload, Mechanism.FAILURE)

    def _on_unhandled_failure(self, message: Message) -> None:
        self._apply_unhandled_failure(message.payload)

    def _apply_unhandled_failure(self, payload: Mapping[str, Any]) -> None:
        """Coordination agent aborts after an unhandled step failure,
        compensating every reported executed step in reverse order."""
        instance_id = payload["instance_id"]
        tracker = self.trackers.get(instance_id)
        if tracker is None or tracker.finished:
            return
        runtime = self.runtimes.get(instance_id)
        compiled = self.system.compiled(payload["schema_name"])
        schema = compiled.schema
        tracker.executors.update(payload["executors"])
        done_times = dict(payload["done_times"])
        ordered = [
            step
            for step in sorted(done_times, key=lambda s: -done_times[s])
            if schema.steps[step].compensable
        ]
        self.trace.record(self.simulator.now, self.name, "failure.unhandled",
                          instance=instance_id, step=payload["failed_step"])
        # Halt every thread first: the probes invalidate all completions, and
        # the compensation chain carries those invalidations so hop agents
        # see the staleness regardless of message arrival order.
        invalidations: dict[str, int] = {}
        if runtime is not None:
            self.system.obs_recovery_started(
                instance_id, self.name, self.simulator.now, origin=None,
                epoch=runtime.fragment.recovery_epoch + 1, mechanism="failure",
            )
            epoch = runtime.fragment.recovery_epoch + 1
            runtime.fragment.recovery_epoch = epoch
            self._halt_from(runtime, instance_id, compiled.start_step, epoch,
                            Mechanism.FAILURE, include_origin_agent=True)
            invalidations = dict(runtime.known_invalidations)
        if ordered:
            # Saga-style default: compensate everything executed in strict
            # reverse execution order via a CompensateThread chain.
            self._process_compensate_thread({
                "schema_name": schema.name,
                "instance_id": instance_id,
                "step_list": ordered,
                "mechanism": Mechanism.FAILURE.value,
                "executors": dict(tracker.executors),
                "invalidations": invalidations,
            })
        tracker.finished = True
        self.agdb.set_summary(instance_id, InstanceStatus.ABORTED)
        if runtime is not None:
            runtime.fragment.status = InstanceStatus.ABORTED
            self._persist(runtime)
        self._withdraw_coordination(instance_id, runtime, aborted=True)
        self.system._record_outcome(
            instance_id, schema.name, InstanceStatus.ABORTED, {}, self.simulator.now
        )

    # ------------------------------------------------------------------ step-status polling

    def _on_step_status(self, message: Message) -> None:
        """StepStatus WI: report what this agent knows about a step."""
        payload = message.payload
        instance_id = payload["instance_id"]
        step = payload["step"]
        status = "unknown"
        if self.agdb.has_fragment(instance_id):
            runtime = self._runtime(payload["schema_name"], instance_id)
            record = runtime.fragment.steps.get(step)
            if record is None:
                status = "not_executed"
            elif record.status is StepStatus.RUNNING:
                status = "executing" if record.agent == self.name else "unknown"
            elif record.status is StepStatus.DONE and record.agent == self.name:
                status = "done"
                # Repair: re-send the packet flow for the requester.
                self._navigate(runtime, instance_id, step,
                               Mechanism.FAILURE, only_to=message.src)
            else:
                status = "not_executed"
        self.send(
            message.src,
            VERB_STEP_STATUS_REPLY,
            {"instance_id": instance_id, "step": step, "status": status},
            Mechanism.FAILURE,
        )

    def _on_step_status_reply(self, message: Message) -> None:
        # Replies are informational; the packet resend (when status=done)
        # repairs the flow.  Recorded for tests/observability.
        self.trace.record(self.simulator.now, self.name, "step.status_reply",
                          instance=message.payload["instance_id"],
                          step=message.payload["step"],
                          status=message.payload["status"])

    def poll_step_status(self, schema_name: str, instance_id: str, step: str) -> None:
        """Poll the eligible agents of ``step`` (paper's predecessor-failure
        handling for pending rules that time out)."""
        for agent in self.agdb.eligible_agents(schema_name, step):
            if agent == self.name:
                continue
            self.send(agent, WI.STEP_STATUS.value,
                      {"schema_name": schema_name, "instance_id": instance_id,
                       "step": step}, Mechanism.FAILURE)

    # ------------------------------------------------------------------ status probes

    def workflow_status_probe(self, instance_id: str) -> int:
        """Launch the paper's probe chain to locate a workflow's current steps.

        "To determine which step of a workflow is being performed at a
        given instant, a chain of probe messages has to be sent starting
        from the agent responsible for performing the first step until the
        message reaches the agent that is performing the current step."

        Returns the probe id; reports accumulate in ``probe_reports``.
        """
        probe_id = next(self._probe_ids)
        self._probe_reports.setdefault(instance_id, [])
        self._apply_status_probe({
            "instance_id": instance_id,
            "probe_id": probe_id,
            "origin": self.name,
        })
        return probe_id

    def probe_reports(self, instance_id: str) -> list[dict]:
        """Reports received so far for probes of ``instance_id``."""
        return list(self._probe_reports.get(instance_id, []))

    def _on_status_probe(self, message: Message) -> None:
        self._apply_status_probe(dict(message.payload))

    def _apply_status_probe(self, payload: dict[str, Any]) -> None:
        instance_id = payload["instance_id"]
        probe_key = (instance_id, payload["probe_id"])
        if probe_key in self._seen_status_probes:
            return
        self._seen_status_probes.add(probe_key)
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        running = sorted(
            record.step
            for record in runtime.fragment.steps.values()
            if record.status is StepStatus.RUNNING and record.agent == self.name
        )
        waiting = sorted(
            rule.step
            for rule in runtime.engine.pending_rules()
            if rule.kind == "execute" and rule.step in runtime.hosted
        )
        if running or waiting:
            report = {
                "instance_id": instance_id,
                "probe_id": payload["probe_id"],
                "agent": self.name,
                "running": running,
                "waiting": waiting,
            }
            if payload["origin"] == self.name:
                self._on_status_probe_report_payload(report)
            else:
                self.send(payload["origin"], VERB_STATUS_PROBE_REPORT, report,
                          Mechanism.NORMAL)
        # Chain onward through the steps this agent executed and forwarded.
        compiled = runtime.compiled
        targets: set[str] = set()
        for step in runtime.forwarded:
            for successor in compiled.graph.successors(step):
                for agent in self.agdb.eligible_agents(compiled.name, successor):
                    if agent != self.name:
                        targets.add(agent)
        for agent in sorted(targets):
            self.send(agent, VERB_STATUS_PROBE, dict(payload), Mechanism.NORMAL)

    def _on_status_probe_report(self, message: Message) -> None:
        self._on_status_probe_report_payload(dict(message.payload))

    def _on_status_probe_report_payload(self, report: dict[str, Any]) -> None:
        self._probe_reports.setdefault(report["instance_id"], []).append(report)
        self.trace.record(self.simulator.now, self.name, "status.probe_report",
                          instance=report["instance_id"], agent=report["agent"],
                          running=",".join(report["running"]) or "-",
                          waiting=",".join(report["waiting"]) or "-")

    # ------------------------------------------------------------------ watchdogs

    def _watchdog(self, instance_id: str, step: str) -> None:
        """Eligible-peer watchdog: take over a query step whose assigned
        executor crashed; wait (re-arming) for update steps."""
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        runtime.watchdogs.discard(step)
        if step_done(step) in runtime.engine.events:
            return  # completed normally
        record = runtime.fragment.steps.get(step)
        if record is not None and record.status in (StepStatus.DONE, StepStatus.RUNNING):
            return
        assigned = runtime.assigned.get(step)
        if assigned is None or assigned == self.name:
            return
        if self.network.is_up(assigned):
            return  # executor alive: reliable messaging will get it done
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        if step_def.step_type is StepType.UPDATE:
            # "the successor agent has to wait for the failed agent to come
            # up" — re-arm the watchdog until it recovers.
            runtime.watchdogs.add(step)
            self.simulator.schedule(
                self.config.step_status_poll_interval, self._watchdog,
                instance_id, step,
            )
            return
        # Query step: deterministic takeover by the first *up* eligible agent.
        eligible = self.agdb.eligible_agents(compiled.name, step)
        takeover = elect_executor(eligible, compiled.name, instance_id, step,
                                  is_up=self.network.is_up)
        if takeover != self.name:
            return
        # Only take over if the step's rule actually fired here (we have the
        # trigger events) — otherwise keep waiting for state.
        rules = runtime.engine.rules_for_step(step)
        if not any(rule.fired for rule in rules):
            runtime.watchdogs.add(step)
            self.simulator.schedule(
                self.config.step_status_poll_interval, self._watchdog,
                instance_id, step,
            )
            return
        self.trace.record(self.simulator.now, self.name, "step.takeover",
                          instance=instance_id, step=step, was=assigned)
        runtime.assigned[step] = self.name
        self._execute_step(instance_id, step)

    # ------------------------------------------------------------------ purge

    def _broadcast_purge(self) -> None:
        self._purge_scheduled = False
        batch, self._purge_pending = self._purge_pending, []
        if not batch:
            return
        payload = {"instance_ids": batch}
        for agent in self.system.agent_names():
            if agent == self.name:
                self.agdb.purge_instances(batch)
                for instance_id in batch:
                    self.runtimes.pop(instance_id, None)
            else:
                self.send(agent, VERB_PURGE, payload, Mechanism.NORMAL)
        self.trace.record(self.simulator.now, self.name, "purge.broadcast",
                          count=len(batch))

    def _on_purge(self, message: Message) -> None:
        ids = list(message.payload["instance_ids"])
        self.agdb.purge_instances(ids)
        for instance_id in ids:
            self.runtimes.pop(instance_id, None)
