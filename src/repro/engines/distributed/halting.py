"""Rollback halting and compensation chains (paper Section 5.2).

A step failure (or input change) invokes WorkflowRollback() at the
rollback origin's agent; that agent probes the affected threads with
HaltThread() calls that invalidate downstream ``step.done`` events and
quiesce control flow.  Compensation dependent sets travel as
CompensateSet() chains in reverse execution order, and abandoned
if-then-else branches are undone by CompensateThread() chains — each hop
agent checks locally whether its step ran (and is stale) before
compensating.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.interfaces import WI
from repro.core.programs import ExecutionContext
from repro.core.recovery import RecoveryTokens
from repro.engines.base import record_compensation
from repro.engines.coord import SpecIndex
from repro.engines.runtime import (
    AgentRuntime,
    absorb_invalidations,
    open_invalidation_round,
)
from repro.model.policies import DEFAULT_POLICY
from repro.obs.profile import profiled
from repro.rules.events import step_done
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message
from repro.storage.tables import InstanceStatus, StepStatus

__all__ = ["AgentHaltingMixin"]


class AgentHaltingMixin:
    """Halting/compensation behavior of :class:`~repro.engines.distributed.WorkflowAgentNode`."""

    # ------------------------------------------------------------------ rollback

    def _on_workflow_rollback(self, message: Message) -> None:
        self._apply_workflow_rollback(message.payload)

    @profiled("recovery.rollback")
    def _apply_workflow_rollback(self, payload: Mapping[str, Any]) -> None:
        instance_id = payload["instance_id"]
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            runtime = self._runtime(payload["schema_name"], instance_id)
        fragment = runtime.fragment
        if fragment.status is not InstanceStatus.RUNNING:
            return
        origin = payload["origin"]
        epoch = payload["epoch"]
        mechanism = Mechanism(payload.get("mechanism", Mechanism.FAILURE.value))
        if epoch <= fragment.recovery_epoch:
            return  # already handled (duplicate rollback request)
        self.trace.record(self.simulator.now, self.name, "rollback",
                          instance=instance_id, origin=origin, epoch=epoch)
        self.system.obs_recovery_started(
            instance_id, self.name, self.simulator.now, origin=origin,
            epoch=epoch, mechanism=mechanism.value,
        )
        fragment.recovery_epoch = epoch
        runtime.recovery_mechanism = mechanism
        runtime.origin_history[epoch] = origin
        self._halt_from(runtime, instance_id, origin, epoch, mechanism,
                        include_origin_agent=False)
        # (the halt bumped fragment.invalidation_round)
        # Rollback-dependency triggers (single hop: a rollback induced by
        # a dependency does not re-trigger dependencies, avoiding ping-pong
        # between mutually dependent instances).
        recovery = RecoveryTokens(runtime.compiled, origin)
        rd_allowed = not payload.get("from_rd", False)
        for spec in self.spec_index.rd_triggers(fragment.schema_name) if rd_allowed else []:
            if spec.trigger_step_a not in recovery.steps:
                continue
            authority = self.system.authority_agent_for(spec)
            trigger_payload = {
                "op": "rd_trigger",
                "spec": spec.name,
                "instance_id": instance_id,
                "key": SpecIndex.conflict_key_value(spec, fragment),
            }
            if authority == self.name:
                self._apply_rd_trigger(trigger_payload)
            else:
                self.send(authority, WI.ADD_RULE.value, trigger_payload,
                          Mechanism.COORDINATION)
        # Re-execution: the origin's rules were re-armed by the local halt;
        # its trigger events (outside the invalidation set) are still valid.
        runtime.engine.reevaluate()

    def _halt_from(
        self,
        runtime: AgentRuntime,
        instance_id: str,
        origin: str,
        epoch: int,
        mechanism: Mechanism,
        include_origin_agent: bool,
    ) -> None:
        """Apply the local halt/invalidation and probe successor agents."""
        compiled = runtime.compiled
        fragment = runtime.fragment
        recovery = RecoveryTokens(compiled, origin)
        round = open_invalidation_round(runtime, recovery.tokens)
        runtime.engine.invalidate_events(recovery.tokens)
        runtime.engine.reset_rules_for_steps(recovery.steps)
        for step in recovery.steps:
            record = fragment.steps.get(step)
            if record is not None and record.status is StepStatus.RUNNING:
                record.status = StepStatus.NOT_STARTED
        self._persist(runtime)
        # Probe the agents responsible for the successor steps.  The probe
        # recurses at each agent that already forwarded packets.
        payload = {
            "schema_name": compiled.name,
            "instance_id": instance_id,
            "origin": origin,
            "epoch": epoch,
            "mechanism": mechanism.value,
            "invalidations": {t: round for t in recovery.tokens},
        }
        targets: set[str] = set()
        for successor in compiled.graph.successors(origin):
            for agent in self.agdb.eligible_agents(compiled.name, successor):
                if agent != self.name:
                    targets.add(agent)
        for agent in sorted(targets):
            self.send(agent, WI.HALT_THREAD.value, payload, mechanism)

    def _on_halt_thread(self, message: Message) -> None:
        payload = message.payload
        instance_id = payload["instance_id"]
        if self.agdb.was_purged(instance_id):
            return
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            if not self.agdb.has_fragment(instance_id):
                return  # never saw this instance; nothing to halt
            runtime = self._runtime(payload["schema_name"], instance_id)
        fragment = runtime.fragment
        epoch = payload["epoch"]
        if epoch <= fragment.recovery_epoch:
            return  # this halt round already processed here
        fragment.recovery_epoch = epoch
        mechanism = Mechanism(payload.get("mechanism", Mechanism.FAILURE.value))
        if mechanism in (Mechanism.FAILURE, Mechanism.INPUT_CHANGE):
            runtime.recovery_mechanism = mechanism
        origin = payload["origin"]
        runtime.origin_history[epoch] = origin
        compiled = runtime.compiled
        recovery = RecoveryTokens(compiled, origin)
        self.trace.record(self.simulator.now, self.name, "halt.thread",
                          instance=instance_id, origin=origin, epoch=epoch)
        runtime.engine.apply_invalidations(dict(payload["invalidations"]))
        runtime.engine.reset_rules_for_steps(recovery.steps)
        absorb_invalidations(runtime, payload["invalidations"])
        for step in recovery.steps:
            record = fragment.steps.get(step)
            if record is not None and record.status is StepStatus.RUNNING:
                record.status = StepStatus.NOT_STARTED
        self._persist(runtime)
        # Propagate to successors of steps this agent executed and forwarded.
        forwarded_affected = runtime.forwarded & recovery.steps
        targets: set[str] = set()
        for step in forwarded_affected:
            for successor in compiled.graph.successors(step):
                for agent in self.agdb.eligible_agents(compiled.name, successor):
                    if agent != self.name:
                        targets.add(agent)
        runtime.forwarded -= recovery.steps
        for agent in sorted(targets):
            self.send(agent, WI.HALT_THREAD.value, dict(payload), mechanism)

    # ------------------------------------------------------------------ compensation WIs

    def _on_step_compensate(self, message: Message) -> None:
        self._on_step_compensate_local(message.payload, message.mechanism)

    def _on_step_compensate_local(
        self, payload: Mapping[str, Any], mechanism: Mechanism
    ) -> None:
        """StepCompensate WI: compensate the step if this agent executed it."""
        instance_id = payload["instance_id"]
        if not self.agdb.has_fragment(instance_id):
            return
        runtime = self._runtime(payload["schema_name"], instance_id)
        step = payload["step"]
        record = runtime.fragment.steps.get(step)
        if record is None or record.status is not StepStatus.DONE:
            return
        if record.agent != self.name:
            return
        step_def = runtime.compiled.schema.steps[step]
        self._compensate_local(
            runtime, step, payload.get("kind", "complete"),
            step_def.effective_compensation_cost, mechanism,
        )

    def _compensate_local(
        self,
        runtime: AgentRuntime,
        step: str,
        kind: str,
        cost: float,
        mechanism: Mechanism,
    ) -> None:
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        record = runtime.fragment.record(step)
        program = self.system.programs.get(step_def.program, step_def.outputs)
        ctx = ExecutionContext(
            schema_name=compiled.name,
            instance_id=runtime.fragment.instance_id,
            step=step,
            attempt=record.executions,
            now=self.simulator.now,
            node=self.name,
        )
        program.compensate(record, ctx)
        self.network.metrics.record_work(self.name, "compensate", cost)
        token = record_compensation(runtime.fragment, step_def, kind)
        runtime.engine.post_event(token, self.simulator.now,
                                  runtime.fragment.invalidation_round)
        self._persist(runtime)
        self.trace.record(self.simulator.now, self.name, "step.compensated",
                          instance=runtime.fragment.instance_id, step=step,
                          comp=kind)

    def _forward_compensate_set(
        self,
        runtime: AgentRuntime,
        instance_id: str,
        chain: list[str],
        origin_step: str,
        mechanism: Mechanism,
        partial_kind: str | None,
    ) -> None:
        """Send (or locally process) the next hop of a CompensateSet chain."""
        payload = {
            "schema_name": runtime.fragment.schema_name,
            "instance_id": instance_id,
            "step_list": list(chain),
            "origin_step": origin_step,
            "initiator": self.name,
            "mechanism": mechanism.value,
            "partial_kind": partial_kind,
            "executors": dict(runtime.executors),
            # Hop agents apply these before deciding, so a chain racing
            # ahead of the HaltThread probes still sees the stale state.
            "invalidations": dict(runtime.known_invalidations),
        }
        self._process_compensate_set(payload)

    def _on_compensate_set(self, message: Message) -> None:
        self._process_compensate_set(dict(message.payload))

    def _process_compensate_set(self, payload: dict[str, Any]) -> None:
        instance_id = payload["instance_id"]
        step_list: list[str] = list(payload["step_list"])
        origin_step = payload["origin_step"]
        mechanism = Mechanism(payload["mechanism"])
        if not step_list:
            return
        step = step_list[0]
        executors = dict(payload["executors"])
        target = executors.get(step)
        if target is None:
            compiled = self.system.compiled(payload["schema_name"])
            target = self._elect(compiled, instance_id, step)
        if target != self.name:
            payload["step_list"] = step_list
            self.send(target, WI.COMPENSATE_SET.value, payload, mechanism)
            return
        # This agent is responsible for the head of the list: compensate it
        # if it was executed here *and* its completion is stale (a valid
        # done event means the step was already re-established and keeps
        # its effects — e.g. an OCR reuse).
        runtime = self._runtime(payload["schema_name"], instance_id)
        invalidations = dict(payload.get("invalidations", {}))
        if invalidations:
            runtime.engine.apply_invalidations(invalidations)
            absorb_invalidations(runtime, invalidations)
        record = runtime.fragment.steps.get(step)
        occurrence = runtime.engine.events.occurrence(step_done(step))
        stale = occurrence is None or not occurrence.valid
        if record is not None and record.status is StepStatus.DONE and stale:
            step_def = runtime.compiled.schema.steps[step]
            is_origin = step == origin_step
            kind = (
                payload.get("partial_kind") or "complete" if is_origin else "complete"
            )
            cost = step_def.effective_compensation_cost
            if kind == "partial":
                policy = runtime.compiled.schema.cr_policies.get(step, DEFAULT_POLICY)
                cost *= policy.incremental_fraction
            self._compensate_local(runtime, step, kind, cost, mechanism)
        step_list.pop(0)
        if step_list:
            payload["step_list"] = step_list
            self._process_compensate_set(payload)
            return
        # Chain finished.  If the origin step's agent stashed a pending
        # re-execution, resume it (the origin is the last chain element, so
        # we are at its agent — or the chain ended elsewhere and the
        # initiator resumes via this final hop).
        initiator = payload["initiator"]
        if initiator != self.name:
            self.send(initiator, WI.COMPENSATE_SET.value,
                      {**payload, "step_list": []}, mechanism)
            return
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        pending = runtime.pending_exec.pop(origin_step, None)
        if pending is not None:
            plan, inputs, exec_mechanism = pending
            self._launch_program(instance_id, origin_step, plan.execution_cost,
                                 exec_mechanism, inputs)

    def _start_compensate_thread(
        self,
        runtime: AgentRuntime,
        instance_id: str,
        steps: list[str],
        mechanism: Mechanism,
    ) -> None:
        """CompensateThread WI chain over an abandoned if-then-else branch."""
        payload = {
            "schema_name": runtime.fragment.schema_name,
            "instance_id": instance_id,
            "step_list": list(steps),
            "mechanism": mechanism.value,
            "executors": dict(runtime.executors),
            "invalidations": dict(runtime.known_invalidations),
        }
        self.trace.record(self.simulator.now, self.name, "compensate.thread",
                          instance=instance_id, steps=",".join(steps))
        self._process_compensate_thread(payload)

    def _on_compensate_thread(self, message: Message) -> None:
        self._process_compensate_thread(dict(message.payload))

    def _process_compensate_thread(self, payload: dict[str, Any]) -> None:
        step_list: list[str] = list(payload["step_list"])
        if not step_list:
            return
        instance_id = payload["instance_id"]
        mechanism = Mechanism(payload["mechanism"])
        step = step_list[0]
        executors = dict(payload["executors"])
        target = executors.get(step)
        if target is None:
            compiled = self.system.compiled(payload["schema_name"])
            target = self._elect(compiled, instance_id, step)
        if target != self.name:
            self.send(target, WI.COMPENSATE_THREAD.value, payload, mechanism)
            return
        runtime = self._runtime(payload["schema_name"], instance_id)
        invalidations = dict(payload.get("invalidations", {}))
        if invalidations:
            runtime.engine.apply_invalidations(invalidations)
            absorb_invalidations(runtime, invalidations, bump_round=False)
        record = runtime.fragment.steps.get(step)
        occurrence = runtime.engine.events.occurrence(step_done(step))
        stale = occurrence is None or not occurrence.valid
        if record is not None and record.status is StepStatus.DONE and stale:
            step_def = runtime.compiled.schema.steps[step]
            self._compensate_local(
                runtime, step, "complete", step_def.effective_compensation_cost,
                mechanism,
            )
        step_list.pop(0)
        if step_list:
            payload["step_list"] = step_list
            self._process_compensate_thread(payload)

    # ------------------------------------------------------------------ inputs changed

    def _on_inputs_changed(self, message: Message) -> None:
        self._on_inputs_changed_local(message.payload)

    def _on_inputs_changed_local(self, payload: Mapping[str, Any]) -> None:
        """InputsChanged WI at the origin step's agent: apply the new input
        values, then run the standard rollback machinery from the origin."""
        instance_id = payload["instance_id"]
        runtime = self._runtime(payload["schema_name"], instance_id)
        changes = dict(payload["changes"])
        overrides = {f"WF.{name}": value for name, value in changes.items()}
        runtime.input_overrides.update(overrides)
        runtime.fragment.merge_data(overrides)
        for name, value in changes.items():
            if name in runtime.fragment.inputs:
                runtime.fragment.inputs[name] = value
        rollback_payload = {
            "schema_name": payload["schema_name"],
            "instance_id": instance_id,
            "origin": payload["origin"],
            "failed_step": None,
            "epoch": payload["epoch"],
            "mechanism": Mechanism.INPUT_CHANGE.value,
        }
        self._apply_workflow_rollback(rollback_payload)
