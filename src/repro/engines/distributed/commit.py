"""Terminal-profile commit protocol at the coordination agent.

Termination agents report their terminal completions (StepCompleted);
the coordination agent tracks which reports are still valid across
rollbacks (via the merged origin history) and commits the workflow once
the terminal profile is satisfiable, forwarding outputs to a waiting
parent workflow if the instance is nested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.interfaces import WI
from repro.engines.distributed.navigation import VERB_NESTED_DONE, elect_executor
from repro.engines.runtime import AgentRuntime
from repro.model.compiler import CompiledSchema
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message
from repro.storage.tables import InstanceStatus, StepStatus

__all__ = ["AgentCommitMixin", "CommitTracker"]


@dataclass
class CommitTracker:
    """Coordination-agent record for one instance it coordinates."""

    reported: dict[str, int] = field(default_factory=dict)  # terminal -> epoch
    epoch: int = 0
    last_origin: str | None = None
    executors: dict[str, str] = field(default_factory=dict)
    done_times: dict[str, float] = field(default_factory=dict)
    data: dict[str, Any] = field(default_factory=dict)
    #: recovery epoch -> rollback origin, merged from terminal reports; used
    #: to decide which older reports a rollback invalidated.
    origin_history: dict[int, str] = field(default_factory=dict)
    parent_link: tuple[str, str] | None = None
    finished: bool = False

    def snapshot(self) -> dict[str, Any]:
        """JSON-plain snapshot for AGDB persistence.

        Terminal reports are consumed on receipt and never re-sent, so a
        coordination agent that crashes must recover them from its WAL or
        the instance can never commit.
        """
        return {
            "reported": dict(self.reported),
            "epoch": self.epoch,
            "last_origin": self.last_origin,
            "executors": dict(self.executors),
            "done_times": dict(self.done_times),
            "data": dict(self.data),
            "origin_history": {str(e): o for e, o in self.origin_history.items()},
            "parent_link": list(self.parent_link) if self.parent_link else None,
            "finished": self.finished,
        }

    @classmethod
    def from_snapshot(cls, payload: Mapping[str, Any]) -> "CommitTracker":
        parent_link = payload.get("parent_link")
        return cls(
            reported=dict(payload["reported"]),
            epoch=payload["epoch"],
            last_origin=payload.get("last_origin"),
            executors=dict(payload["executors"]),
            done_times=dict(payload["done_times"]),
            data=dict(payload["data"]),
            origin_history={int(e): o for e, o in payload["origin_history"].items()},
            parent_link=(parent_link[0], parent_link[1]) if parent_link else None,
            finished=payload["finished"],
        )


class AgentCommitMixin:
    """Commit-protocol behavior of :class:`~repro.engines.distributed.WorkflowAgentNode`."""

    def _report_completion(
        self,
        runtime: AgentRuntime,
        instance_id: str,
        terminal: str,
        mechanism: Mechanism,
    ) -> None:
        compiled = runtime.compiled
        coordination_agent = self._coordination_agent_of(compiled)
        done_times = {
            s: r.done_at or 0.0
            for s, r in runtime.fragment.steps.items()
            if r.status is StepStatus.DONE
        }
        for token, time in runtime.engine.events.export().items():
            if token.endswith(".D") and not token.startswith(("WF.", "EXT.")):
                done_times.setdefault(token[:-2], time)
        payload = {
            "schema_name": compiled.name,
            "instance_id": instance_id,
            "terminal": terminal,
            "epoch": runtime.fragment.recovery_epoch,
            "origin_history": dict(runtime.origin_history),
            "executors": dict(runtime.executors),
            "done_times": done_times,
            "data": dict(runtime.fragment.data),
        }
        if coordination_agent == self.name:
            self._apply_completion(payload)
        else:
            self.send(coordination_agent, WI.STEP_COMPLETED.value, payload,
                      Mechanism.NORMAL)

    def _on_step_completed(self, message: Message) -> None:
        self._apply_completion(message.payload)

    def _apply_completion(self, payload: Mapping[str, Any]) -> None:
        instance_id = payload["instance_id"]
        tracker = self.trackers.get(instance_id)
        if tracker is None or tracker.finished:
            return
        compiled = self.system.compiled(payload["schema_name"])
        epoch = payload["epoch"]
        terminal = payload["terminal"]
        tracker.origin_history.update(
            {int(e): o for e, o in payload.get("origin_history", {}).items()}
        )
        tracker.epoch = max(tracker.epoch, epoch)

        def invalidated(t: str, report_epoch: int) -> bool:
            """Was a report at ``report_epoch`` undone by a later rollback?"""
            return any(
                e > report_epoch and t in compiled.affected_terminals(o)
                for e, o in tracker.origin_history.items()
            )

        if not invalidated(terminal, epoch):
            tracker.reported[terminal] = max(epoch, tracker.reported.get(terminal, 0))
        tracker.reported = {
            t: e for t, e in tracker.reported.items() if not invalidated(t, e)
        }
        tracker.executors.update(payload["executors"])
        tracker.done_times.update(payload["done_times"])
        tracker.data.update(payload["data"])
        self.trace.record(self.simulator.now, self.name, "terminal.reported",
                          instance=instance_id, terminal=terminal, epoch=epoch)
        if compiled.commit_ready(set(tracker.reported)):
            self._commit(instance_id, compiled, tracker)
        else:
            self.agdb.set_tracker(instance_id, tracker.snapshot())

    def _commit(
        self, instance_id: str, compiled: CompiledSchema, tracker: CommitTracker
    ) -> None:
        tracker.finished = True
        self.agdb.set_tracker(instance_id, tracker.snapshot())
        self.agdb.set_summary(instance_id, InstanceStatus.COMMITTED)
        runtime = self.runtimes.get(instance_id)
        if runtime is not None:
            runtime.fragment.status = InstanceStatus.COMMITTED
            self._persist(runtime)
        outputs: dict[str, Any] = {}
        for name, ref in compiled.schema.outputs.items():
            if ref in tracker.data:
                outputs[name] = tracker.data[ref]
        self.system._record_outcome(
            instance_id, compiled.name, InstanceStatus.COMMITTED, outputs,
            self.simulator.now,
        )
        self.trace.record(self.simulator.now, self.name, "workflow.commit",
                          instance=instance_id)
        self._withdraw_coordination(instance_id, runtime, aborted=False)
        if tracker.parent_link is not None:
            parent_id, parent_step = tracker.parent_link
            parent_compiled = None
            for schema in self.system.schemas.values():
                if parent_step in schema.schema.steps and schema.schema.steps[
                    parent_step
                ].subworkflow == compiled.name:
                    parent_compiled = schema
                    break
            target = None
            if parent_compiled is not None:
                target = elect_executor(
                    self.agdb.eligible_agents(parent_compiled.name, parent_step),
                    parent_compiled.name, parent_id, parent_step,
                    is_up=self.network.is_up,
                )
            payload = {
                "parent_id": parent_id,
                "parent_step": parent_step,
                "outputs": outputs,
            }
            if target is None or target == self.name:
                self._apply_nested_done(payload)
            else:
                self.send(target, VERB_NESTED_DONE, payload, Mechanism.NORMAL)
        if self.config.purge_interval is not None:
            self._purge_pending.append(instance_id)
            if not self._purge_scheduled:
                self._purge_scheduled = True
                self.simulator.schedule(
                    self.config.purge_interval, self._broadcast_purge
                )
