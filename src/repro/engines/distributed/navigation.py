"""Packet forwarding, executor election and step execution.

Navigation in distributed control is packet-driven: every eligible agent
of a successor step receives the workflow packet carrying the accumulated
data/event state, and the deterministically *elected* executor runs the
step.  This module holds that forward path — packet ingestion, rule
firing, program execution, successor selection (including the paper's
two-phase StateInformation load probes), loop re-entry and nested
workflow launch.
"""

from __future__ import annotations

import zlib
from typing import Any, Mapping

from repro.core.interfaces import WI
from repro.core.ocr import plan_step_action
from repro.core.packets import WorkflowPacket
from repro.core.programs import ExecutionContext
from repro.core.recovery import invalidation_tokens
from repro.engines.base import (
    record_execution_failure,
    record_execution_success,
    record_reuse,
)
from repro.engines.runtime import (
    AgentRuntime,
    absorb_invalidations,
    compensate_set_chain,
    open_invalidation_round,
    reverse_topo_order,
)
from repro.errors import SchemaError, SimulationError
from repro.model.policies import DEFAULT_POLICY
from repro.obs.profile import profiled
from repro.rules.engine import RuleInstance
from repro.rules.events import step_done
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message
from repro.storage.tables import InstanceStatus, StepStatus

__all__ = ["AgentNavigationMixin", "VERB_NESTED_DONE", "elect_executor"]

VERB_NESTED_DONE = "NestedDone"


def elect_executor(
    eligible: tuple[str, ...],
    schema_name: str,
    instance_id: str,
    step: str,
    is_up=None,
) -> str:
    """Deterministic executor election among eligible agents.

    All agents (senders and receivers alike) compute the same permutation
    from a hash of ``(schema, instance, step)``; the first *up* agent in
    that order executes.  Epoch-independent so that a re-execution after
    rollback lands on the agent holding the previous execution's data —
    the precondition for OCR reuse.
    """
    if len(eligible) == 1:
        return eligible[0]
    seed = zlib.crc32(f"{schema_name}|{instance_id}|{step}".encode("utf-8"))
    start = seed % len(eligible)
    order = [eligible[(start + i) % len(eligible)] for i in range(len(eligible))]
    if is_up is not None:
        for agent in order:
            if is_up(agent):
                return agent
    return order[0]


class AgentNavigationMixin:
    """Forward-path behavior of :class:`~repro.engines.distributed.WorkflowAgentNode`."""

    # ------------------------------------------------------------------ packets

    def _on_step_execute(self, message: Message) -> None:
        packet = WorkflowPacket.from_payload(message.payload)
        self._ingest_packet(packet)

    def _ingest_packet(self, packet: WorkflowPacket) -> None:
        instance_id = packet.instance_id
        if self.agdb.was_purged(instance_id):
            return
        runtime = self._runtime(packet.schema_name, instance_id,
                                parent_link=packet.parent_link)
        fragment = runtime.fragment
        if fragment.status is not InstanceStatus.RUNNING:
            return
        if packet.recovery_epoch < fragment.recovery_epoch:
            self.trace.record(self.simulator.now, self.name, "packet.stale",
                              instance=instance_id, step=packet.target_step)
            return
        if packet.recovery_epoch > fragment.recovery_epoch:
            fragment.recovery_epoch = packet.recovery_epoch
            if packet.mechanism in (Mechanism.FAILURE, Mechanism.INPUT_CHANGE):
                runtime.recovery_mechanism = packet.mechanism
        if runtime.governed:
            self.charge(float(runtime.governed), Mechanism.COORDINATION)
        # Invalidations first, then state merge, then events (which may fire
        # rules against the merged data).  The fragment adopts the highest
        # round it hears about so its own re-executions outlive the cutoffs.
        absorb_invalidations(runtime, packet.invalidations)
        runtime.engine.apply_invalidations(packet.invalidations)
        fragment.merge_data(packet.data)
        if runtime.input_overrides:
            fragment.merge_data(runtime.input_overrides)
        runtime.executors.update(packet.executors)
        runtime.ro_info.update(packet.ro_info)
        if packet.assigned_agent is not None:
            runtime.assigned[packet.target_step] = packet.assigned_agent
        if (
            self.config.agent_failure_recovery
            and packet.assigned_agent not in (None, self.name)
            and packet.target_step not in runtime.watchdogs
        ):
            runtime.watchdogs.add(packet.target_step)
            self.simulator.schedule(
                self.config.step_status_timeout,
                self._watchdog, instance_id, packet.target_step,
            )
        # Mutual-exclusion region head arriving: the assigned executor asks
        # the authority for the region lock.
        if packet.assigned_agent == self.name:
            for spec in self.spec_index.mx_region_first(
                packet.schema_name, packet.target_step
            ):
                self._mx_request(runtime, instance_id, spec)
        # Merge without pumping, then re-apply everything this agent knows
        # to be invalidated (a stale packet may carry — and revive — an
        # occurrence this agent already invalidated), and only then fire.
        runtime.engine.events.merge(packet.events, self.simulator.now)
        runtime.engine.apply_invalidations(runtime.known_invalidations)
        runtime.engine.reevaluate()
        self._persist(runtime)

    # ------------------------------------------------------------------ rule firing

    def _on_rule(self, instance_id: str, rule: RuleInstance) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        if rule.kind == "loop":
            self._fire_loop(instance_id, rule)
            return
        step = rule.step
        assigned = runtime.assigned.get(step) or self._elect(
            runtime.compiled, instance_id, step
        )
        if assigned != self.name:
            return  # another eligible agent executes; we just hold state
        entered_via_split = False
        split = runtime.compiled.branch_first_map.get(step)
        if split is not None and step_done(split) in rule.required:
            entered_via_split = True
        self._execute_step(instance_id, step, entered_via_split=entered_via_split)

    @profiled("dispatch.step")
    def _execute_step(
        self, instance_id: str, step: str, entered_via_split: bool = False
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        fragment = runtime.fragment
        step_def = compiled.schema.steps[step]
        record = fragment.record(step)
        if record.status is StepStatus.RUNNING:
            return  # already executing locally
        mechanism = runtime.step_mechanism(step)
        self.charge(1.0, mechanism)

        # CompensateThread: abandoning the previously executed branch.  The
        # agent entering the new branch cannot know which abandoned steps
        # actually ran (their completions never flowed here), so the chain
        # carries the *static* member list in reverse topological order and
        # each hop agent checks locally — mirroring CompensateSet().
        if entered_via_split:
            split = compiled.branch_first_map[step]
            index = compiled.graph.topo_index
            abandoned = reverse_topo_order(
                (
                    m
                    for m in compiled.abandoned_branch_members(split, step)
                    if compiled.schema.steps[m].compensable
                ),
                index,
            )
            if abandoned:
                self._start_compensate_thread(runtime, instance_id, abandoned,
                                              runtime.recovery_mechanism)

        new_inputs = fragment.gather_inputs(step_def.inputs)
        policy = compiled.schema.cr_policies.get(step, DEFAULT_POLICY)
        plan = plan_step_action(step_def, record, new_inputs, policy)
        if plan.decision is not None:
            self.system.obs_ocr_planned(
                instance_id, self.name, self.simulator.now, plan
            )

        if plan.reuse_outputs:
            token = record_reuse(fragment, step_def, self.simulator.now)
            self.trace.record(self.simulator.now, self.name, "step.reuse",
                              instance=instance_id, step=step)
            self.system.obs_step_done(instance_id, step, self.simulator.now)
            runtime.executors[step] = self.name
            self._persist(runtime)
            runtime.engine.post_event(token, self.simulator.now,
                                      runtime.fragment.invalidation_round)
            self._after_step_done(instance_id, step, mechanism)
            return

        if plan.compensate:
            members = compiled.schema.compensation_set_of(step)
            if members is not None:
                # The initiator cannot know which downstream members ran
                # (packets only flow forward), so the StepList is the static
                # member list in reverse topological order; each hop agent
                # checks locally whether its step "has been executed" (and
                # is stale) before compensating — exactly the paper's
                # CompensateSet() procedure.
                chain = compensate_set_chain(
                    members, step, compiled.graph.topo_index
                )
                runtime.pending_exec[step] = (plan, new_inputs, mechanism)
                self.trace.record(self.simulator.now, self.name, "compensate.set",
                                  instance=instance_id, step=step,
                                  chain=",".join(chain))
                self._forward_compensate_set(
                    runtime, instance_id, chain, step, mechanism,
                    partial_kind=plan.compensation_kind,
                )
                return
            # Not in a dependent set: the step was executed here, so the
            # compensation is local.
            self._compensate_local(runtime, step, plan.compensation_kind or "complete",
                                   plan.compensation_cost, mechanism)

        self._launch_program(instance_id, step, plan.execution_cost, mechanism,
                             new_inputs)

    def _launch_program(
        self,
        instance_id: str,
        step: str,
        cost: float,
        mechanism: Mechanism,
        inputs: dict[str, Any],
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        if step_def.subworkflow is not None:
            self._launch_nested(runtime, instance_id, step, inputs)
            return
        record = runtime.fragment.record(step)
        record.status = StepStatus.RUNNING
        record.agent = self.name
        attempt = record.executions + 1
        epoch = runtime.fragment.recovery_epoch
        runtime.running_exec[step] = epoch
        stale_span = runtime.exec_spans.pop(step, None)
        if stale_span is not None:
            self.system.tracer.end(
                stale_span, self.simulator.now, status="cancelled"
            )
        runtime.exec_spans[step] = self.system.obs_step_dispatched(
            instance_id, step, self.name, self.simulator.now,
            attempt=attempt, epoch=epoch, mechanism=mechanism.value,
        )
        self.trace.record(self.simulator.now, self.name, "step.execute",
                          instance=instance_id, step=step, attempt=attempt,
                          epoch=epoch)
        delay = cost * self.config.work_time_scale
        self.schedule_causal(
            delay, self._complete_program, instance_id, step, epoch, attempt,
            mechanism, inputs, cost,
        )

    def _complete_program(
        self,
        instance_id: str,
        step: str,
        epoch: int,
        attempt: int,
        mechanism: Mechanism,
        inputs: dict[str, Any],
        cost: float,
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        fragment = runtime.fragment
        if runtime.running_exec.get(step) != epoch or fragment.recovery_epoch != epoch:
            # Stale completion from before a rollback; the halt already
            # reset the step record and a newer execution may be in flight.
            self.trace.record(self.simulator.now, self.name, "step.stale_result",
                              instance=instance_id, step=step)
            if runtime.running_exec.get(step) == epoch:
                # This *was* the step's latest local launch — it raced an
                # epoch bump (a delayed pre-rollback packet started it just
                # before the invalidation arrived).  The current epoch's
                # navigation skipped the step as "already executing", so
                # nobody else will ever complete it: release the record and
                # re-drive the step under the current epoch.
                runtime.running_exec.pop(step, None)
                record = fragment.steps.get(step)
                if record is not None and record.status is StepStatus.RUNNING:
                    record.status = StepStatus.NOT_STARTED
                    self._persist(runtime)
                    if any(r.fired for r in runtime.engine.rules_for_step(step)):
                        self._execute_step(instance_id, step)
            return
        runtime.running_exec.pop(step, None)
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        program = self.system.programs.get(step_def.program, step_def.outputs)
        ctx = ExecutionContext(
            schema_name=compiled.name,
            instance_id=instance_id,
            step=step,
            attempt=attempt,
            now=self.simulator.now,
            node=self.name,
            rng=self.system.rng.stream(f"prog:{instance_id}:{step}"),
        )
        result = program.execute(inputs, ctx)
        self.network.metrics.record_work(self.name, "execute", cost)
        runtime.executors[step] = self.name
        exec_span = runtime.exec_spans.pop(step, None)
        if result.success:
            token = record_execution_success(
                fragment, step_def, inputs, result.outputs, self.simulator.now,
                self.name,
            )
            self.trace.record(self.simulator.now, self.name, "step.done",
                              instance=instance_id, step=step)
            if exec_span is not None:
                self.system.obs_step_finished(
                    exec_span, self.simulator.now, status="done"
                )
            self.system.obs_step_done(instance_id, step, self.simulator.now)
            self._persist(runtime)
            runtime.engine.post_event(token, self.simulator.now,
                                      runtime.fragment.invalidation_round)
            self._after_step_done(instance_id, step, mechanism)
        else:
            token = record_execution_failure(
                fragment, step_def, inputs, self.simulator.now, self.name
            )
            self.trace.record(self.simulator.now, self.name, "step.fail",
                              instance=instance_id, step=step,
                              error=result.error or "-")
            self.dump_flight("step.fail", instance=instance_id, step=step)
            if exec_span is not None:
                self.system.obs_step_finished(
                    exec_span, self.simulator.now, status="failed",
                    error=result.error or "-",
                )
            self._persist(runtime)
            runtime.engine.post_event(token, self.simulator.now,
                                      runtime.fragment.invalidation_round)
            self._handle_failure(instance_id, step)

    # ------------------------------------------------------------------ navigation

    def _after_step_done(
        self, instance_id: str, step: str, mechanism: Mechanism
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        self._coord_on_step_done(runtime, instance_id, step)
        if step in compiled.terminal_steps and not runtime.loop_continues(step):
            self._report_completion(runtime, instance_id, step, mechanism)
            return
        self._navigate(runtime, instance_id, step, mechanism)

    def _navigate(
        self,
        runtime: AgentRuntime,
        instance_id: str,
        step: str,
        mechanism: Mechanism,
        only_to: str | None = None,
    ) -> None:
        compiled = runtime.compiled
        runtime.forwarded.add(step)
        for successor in compiled.graph.successors(step):
            eligible = self.agdb.eligible_agents(compiled.name, successor)
            if (
                self.config.successor_selection == "load"
                and len(eligible) > 1
                and only_to is None
            ):
                # Paper's two-phase selection: probe eligible successors
                # with StateInformation(), dispatch to the least loaded.
                self._probe_then_dispatch(runtime, instance_id, successor,
                                          mechanism, eligible)
                continue
            assigned = self._elect(compiled, instance_id, successor)
            self._send_step_packets(runtime, instance_id, successor, mechanism,
                                    eligible, assigned, only_to)

    @profiled("dispatch.packet")
    def _send_step_packets(
        self,
        runtime: AgentRuntime,
        instance_id: str,
        successor: str,
        mechanism: Mechanism,
        eligible: tuple[str, ...],
        assigned: str,
        only_to: str | None = None,
    ) -> None:
        packet = self._build_packet(runtime, instance_id, successor, mechanism,
                                    assigned)
        for agent in eligible:
            if only_to is not None and agent != only_to:
                continue
            if agent == self.name:
                self._ingest_packet(packet)
            else:
                self.send(agent, WI.STEP_EXECUTE.value, packet.to_payload(),
                          mechanism)

    # -- load-based successor selection (config.successor_selection="load") --

    def _local_executing_count(self) -> int:
        return sum(
            1
            for runtime in self.runtimes.values()
            for record in runtime.fragment.steps.values()
            if record.status is StepStatus.RUNNING and record.agent == self.name
        )

    def _probe_then_dispatch(
        self,
        runtime: AgentRuntime,
        instance_id: str,
        successor: str,
        mechanism: Mechanism,
        eligible: tuple[str, ...],
    ) -> None:
        probe_id = next(self._probe_ids)
        others = [agent for agent in eligible if agent != self.name]
        loads = {}
        if self.name in eligible:
            loads[self.name] = self._local_executing_count()
        self._load_probes[probe_id] = {
            "instance_id": instance_id,
            "successor": successor,
            "mechanism": mechanism,
            "eligible": eligible,
            "waiting": set(others),
            "loads": loads,
        }
        for agent in others:
            self.send(agent, WI.STATE_INFORMATION.value,
                      {"probe_id": probe_id, "mechanism": mechanism.value},
                      mechanism)
        if not others:
            self._finish_load_probe(probe_id)

    def _on_state_information_reply(self, message: Message) -> None:
        probe_id = message.payload.get("probe_id")
        pending = self._load_probes.get(probe_id)
        if pending is None:
            return
        pending["waiting"].discard(message.src)
        pending["loads"][message.src] = message.payload["load"]
        if not pending["waiting"]:
            self._finish_load_probe(probe_id)

    def _finish_load_probe(self, probe_id: int) -> None:
        pending = self._load_probes.pop(probe_id, None)
        if pending is None:
            return
        runtime = self.runtimes.get(pending["instance_id"])
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        loads = pending["loads"]
        assigned = min(loads, key=lambda agent: (loads[agent], agent))
        self._send_step_packets(
            runtime, pending["instance_id"], pending["successor"],
            pending["mechanism"], pending["eligible"], assigned,
        )

    def _build_packet(
        self,
        runtime: AgentRuntime,
        instance_id: str,
        target_step: str,
        mechanism: Mechanism,
        assigned: str,
    ) -> WorkflowPacket:
        fragment = runtime.fragment
        return WorkflowPacket(
            schema_name=fragment.schema_name,
            instance_id=instance_id,
            action="execute",
            target_step=target_step,
            data=dict(fragment.data),
            events=runtime.engine.events.export_versioned(),
            invalidations=dict(runtime.known_invalidations),
            recovery_epoch=fragment.recovery_epoch,
            recovery_origin=None,
            mechanism=mechanism,
            ro_info=tuple(sorted(runtime.ro_info)),
            executors=dict(runtime.executors),
            assigned_agent=assigned,
            parent_link=runtime.parent_link,
        )

    # ------------------------------------------------------------------ loops

    def _fire_loop(self, instance_id: str, rule: RuleInstance) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        # Only the agent that executed the loop source navigates the loop.
        if runtime.executors.get(rule.step) != self.name:
            return
        runtime.loop_fires[rule.rule_id] += 1
        if runtime.loop_fires[rule.rule_id] > self.config.max_loop_iterations:
            raise SimulationError(
                f"loop {rule.rule_id} exceeded {self.config.max_loop_iterations} "
                f"iterations in {instance_id}"
            )
        body = rule.loop_body
        now = self.simulator.now
        self.trace.record(now, self.name, "loop.iterate",
                          instance=instance_id, rule=rule.rule_id,
                          iteration=runtime.loop_fires[rule.rule_id])
        tokens = invalidation_tokens(body)
        open_invalidation_round(runtime, tokens)
        runtime.engine.invalidate_events(tokens)
        runtime.engine.reset_rules_for_steps(body)
        for member in body:
            record = runtime.fragment.steps.get(member)
            if record is not None and member in runtime.hosted:
                record.status = StepStatus.NOT_STARTED
        target = rule.loop_target
        assert target is not None
        compiled = runtime.compiled
        eligible = self.agdb.eligible_agents(compiled.name, target)
        assigned = self._elect(compiled, instance_id, target)
        packet = self._build_packet(runtime, instance_id, target,
                                    Mechanism.NORMAL, assigned)
        # Loop re-entry: the target's trigger events (predecessors outside
        # the body) are still valid and travel inside the packet.
        for agent in eligible:
            if agent == self.name:
                self._ingest_packet(packet)
            else:
                self.send(agent, WI.STEP_EXECUTE.value, packet.to_payload(),
                          Mechanism.NORMAL)
        runtime.engine.reevaluate()

    # ------------------------------------------------------------------ nested workflows

    def _launch_nested(
        self, runtime: AgentRuntime, instance_id: str, step: str,
        inputs: dict[str, Any],
    ) -> None:
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        child_compiled = self.system.compiled(step_def.subworkflow)
        record = runtime.fragment.record(step)
        record.status = StepStatus.RUNNING
        record.agent = self.name
        record.last_inputs = dict(inputs)
        child_inputs = dict(zip(child_compiled.schema.inputs, inputs.values()))
        child_id = f"{instance_id}.{step}#{record.executions + 1}"
        coordination_agent = self._coordination_agent_of(child_compiled)
        self.trace.record(self.simulator.now, self.name, "nested.start",
                          instance=instance_id, step=step, child=child_id)
        payload = {
            "schema_name": child_compiled.name,
            "instance_id": child_id,
            "inputs": child_inputs,
            "parent_link": [instance_id, step],
        }
        if coordination_agent == self.name:
            self.workflow_start(child_compiled.name, child_id, child_inputs,
                                parent_link=(instance_id, step))
        else:
            self.send(coordination_agent, WI.WORKFLOW_START.value, payload,
                      Mechanism.NORMAL)

    def _on_nested_done(self, message: Message) -> None:
        self._apply_nested_done(message.payload)

    def _apply_nested_done(self, payload: Mapping[str, Any]) -> None:
        parent_id = payload["parent_id"]
        parent_step = payload["parent_step"]
        runtime = self.runtimes.get(parent_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        step_def = runtime.compiled.schema.steps[parent_step]
        child_outputs = payload["outputs"]
        missing = [o for o in step_def.outputs if o not in child_outputs]
        if missing:
            raise SchemaError(
                f"nested workflow for {parent_id}.{parent_step} missing outputs "
                f"{missing}"
            )
        record = runtime.fragment.record(parent_step)
        inputs = record.last_inputs
        outputs = {o: child_outputs[o] for o in step_def.outputs}
        runtime.executors[parent_step] = self.name
        token = record_execution_success(
            runtime.fragment, step_def, inputs, outputs, self.simulator.now,
            self.name,
        )
        self._persist(runtime)
        runtime.engine.post_event(token, self.simulator.now,
                                  runtime.fragment.invalidation_round)
        self._after_step_done(parent_id, parent_step, Mechanism.NORMAL)

    # ------------------------------------------------------------------ state info

    def _on_state_information(self, message: Message) -> None:
        executing = self._local_executing_count()
        self.send(message.src, "StateInformationReply",
                  {"probe_id": message.payload.get("probe_id"), "load": executing},
                  Mechanism.NORMAL)
