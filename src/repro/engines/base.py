"""Shared machinery of the three workflow control architectures.

:class:`ControlSystem` is the public facade: register schemas, programs
and coordination specs, start/abort instances, drive the simulation and
read outcomes.  The concrete systems —
:class:`~repro.engines.centralized.CentralizedControlSystem`,
:class:`~repro.engines.parallel.ParallelControlSystem` and
:class:`~repro.engines.distributed.DistributedControlSystem` — differ in
*where* enactment runs and *which* interactions are physical messages;
the enactment semantics (rules, OCR, coordination) are shared.

The module also hosts the architecture-neutral execution-state helpers
(recording results, compensations and reuses in the instance tables) used
by every node implementation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.programs import ProgramRegistry, StepProgram
from repro.errors import FrontEndError, SchemaError, WorkloadError
from repro.model.compiler import CompiledSchema, compile_schema
from repro.model.coordination_spec import (
    CoordinationSpec,
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
)
from repro.model.schema import StepDef, WorkflowSchema
from repro.obs.causal import MessageTracer
from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import NULL_SPAN, Span, Tracer
from repro.rules.events import step_compensated, step_done, step_fail
from repro.runtime.factory import build_runtime
from repro.runtime.latency import FixedLatency
from repro.runtime.metrics import MetricsCollector
from repro.runtime.protocols import Runtime
from repro.runtime.retry import RetryPolicy
from repro.runtime.rng import SimRandom
from repro.runtime.trace import Trace
from repro.storage.tables import InstanceState, InstanceStatus, StepStatus

__all__ = [
    "AgentAssignment",
    "ControlSystem",
    "InstanceOutcome",
    "SystemConfig",
    "governed_step_count",
    "record_compensation",
    "record_execution_failure",
    "record_execution_success",
    "record_reuse",
]


# Histogram bucket presets (simulated time units / counts).  Latencies in
# a default deployment are a few units (two network hops at latency 1.0
# plus cost x work_time_scale); makespans and recoveries run longer.
STEP_LATENCY_BUCKETS = (0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0,
                        16.0, 32.0, 64.0)
MAKESPAN_BUCKETS = (4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
                    1024.0, 2048.0)
RECOVERY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
PENDING_RULE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
QUEUE_DEPTH_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0)


@dataclass
class SystemConfig:
    """Tunable knobs shared by all architectures.

    ``work_time_scale`` converts step cost units into simulated execution
    time; ``successor_selection`` picks the distributed executor election
    strategy (``"hash"`` — deterministic, matches the paper's message
    expression ``s·a + f`` — or ``"load"``, which adds StateInformation
    probe traffic); the failure-recovery knobs control the distributed
    StepStatus polling/takeover machinery.  ``flight_capacity`` sizes the
    per-node flight-recorder ring (independent of ``trace``; 0 disables
    it).
    """

    seed: int = 0
    runtime: str = "sim"
    latency: float = 1.0
    trace: bool = True
    trace_capacity: int | None = 500_000
    trace_ring: bool = False
    flight_capacity: int = 64
    work_time_scale: float = 0.1
    successor_selection: str = "hash"
    dispatch_probes: bool = True
    agent_failure_recovery: bool = True
    step_status_timeout: float = 50.0
    step_status_poll_interval: float = 25.0
    purge_interval: float | None = None
    max_loop_iterations: int = 100
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.successor_selection not in ("hash", "load"):
            raise WorkloadError(
                f"successor_selection must be 'hash' or 'load', "
                f"got {self.successor_selection!r}"
            )


@dataclass
class InstanceOutcome:
    """Public record of how one instance ended."""

    instance_id: str
    schema_name: str
    status: InstanceStatus
    outputs: dict[str, Any] = field(default_factory=dict)
    finished_at: float | None = None

    @property
    def committed(self) -> bool:
        return self.status is InstanceStatus.COMMITTED


class AgentAssignment:
    """Static (schema, step) -> eligible agents mapping.

    "This information is static and is available at the agent after the
    workflow schema has been compiled."  The default policy spreads steps
    round-robin over the agent pool with ``agents_per_step`` eligible
    agents each (Table 3's parameter ``a``).
    """

    def __init__(self) -> None:
        self._eligible: dict[tuple[str, str], tuple[str, ...]] = {}

    def assign(self, schema_name: str, step: str, agents: Sequence[str]) -> None:
        if not agents:
            raise SchemaError(f"step {schema_name}.{step} needs at least one agent")
        self._eligible[(schema_name, step)] = tuple(agents)

    def assign_round_robin(
        self, compiled: CompiledSchema, pool: Sequence[str], agents_per_step: int = 1
    ) -> None:
        if agents_per_step > len(pool):
            raise SchemaError(
                f"agents_per_step={agents_per_step} exceeds pool size {len(pool)}"
            )
        for index, step in enumerate(compiled.schema.steps):
            chosen = tuple(
                pool[(index + j) % len(pool)] for j in range(agents_per_step)
            )
            self._eligible[(compiled.name, step)] = chosen

    def eligible(self, schema_name: str, step: str) -> tuple[str, ...]:
        try:
            return self._eligible[(schema_name, step)]
        except KeyError:
            raise SchemaError(
                f"no agents assigned for step {schema_name}.{step}"
            ) from None

    def has(self, schema_name: str, step: str) -> bool:
        return (schema_name, step) in self._eligible

    def items(self) -> Iterable[tuple[tuple[str, str], tuple[str, ...]]]:
        return self._eligible.items()


def governed_step_count(
    compiled: CompiledSchema, specs: Iterable[CoordinationSpec]
) -> int:
    """Number of governed steps of a schema across its coordination specs.

    This is the paper's ``me + ro + rd`` per-workflow factor: relative
    ordering counts its governed steps, mutual exclusion the steps of its
    region, and rollback dependency its trigger/target step.
    """
    governed: set[tuple[str, str]] = set()
    name = compiled.name
    for spec in specs:
        if isinstance(spec, RelativeOrderSpec):
            for side, steps in ((spec.schema_a, spec.steps_a), (spec.schema_b, spec.steps_b)):
                if side == name:
                    governed.update((spec.name, s) for s in steps)
        elif isinstance(spec, MutualExclusionSpec):
            for side, region in ((spec.schema_a, spec.region_a), (spec.schema_b, spec.region_b)):
                if side == name:
                    first, last = region
                    members = (
                        (compiled.graph.descendants_map[first] | {first})
                        & (compiled.graph.ancestors_map[last] | {last})
                    )
                    governed.update((spec.name, s) for s in members)
        elif isinstance(spec, RollbackDependencySpec):
            if spec.schema_a == name:
                governed.add((spec.name, spec.trigger_step_a))
            if spec.schema_b == name:
                governed.add((spec.name, spec.rollback_to_b))
    return len(governed)


# -- instance-state transition helpers (shared by every node type) -------------


def record_execution_success(
    state: InstanceState,
    step_def: StepDef,
    inputs: Mapping[str, Any],
    outputs: Mapping[str, Any],
    now: float,
    agent: str | None,
) -> str:
    """Record a successful execution; returns the event token to post."""
    record = state.record(step_def.name)
    record.status = StepStatus.DONE
    record.executions += 1
    record.last_inputs = dict(inputs)
    record.last_outputs = dict(outputs)
    record.done_at = now
    record.exec_seq = state.next_exec_seq()
    record.agent = agent
    state.bind_outputs(step_def.name, outputs)
    return step_done(step_def.name)


def record_execution_failure(
    state: InstanceState,
    step_def: StepDef,
    inputs: Mapping[str, Any],
    now: float,
    agent: str | None,
) -> str:
    """Record a logical step failure; returns the event token to post."""
    record = state.record(step_def.name)
    record.status = StepStatus.FAILED
    record.executions += 1
    record.last_inputs = dict(inputs)
    record.done_at = None
    record.agent = agent
    return step_fail(step_def.name)


def record_reuse(state: InstanceState, step_def: StepDef, now: float) -> str:
    """Record an OCR result reuse; returns the ``step.done`` token to post.

    The previous outputs are re-bound (they may have been produced in an
    earlier recovery epoch) and the execution-order stamp is refreshed so
    compensation-set ordering reflects the re-executed history.
    """
    record = state.record(step_def.name)
    record.reuses += 1
    record.status = StepStatus.DONE
    record.done_at = now
    record.exec_seq = state.next_exec_seq()
    state.bind_outputs(step_def.name, record.last_outputs)
    return step_done(step_def.name)


def record_compensation(
    state: InstanceState, step_def: StepDef, kind: str
) -> str:
    """Record a (complete or partial) compensation; returns the event token.

    A *partial* compensation leaves the step logically DONE-but-dirty; the
    caller immediately re-executes it incrementally, so for table purposes
    we mark it COMPENSATED until the re-execution lands.
    """
    record = state.record(step_def.name)
    record.status = StepStatus.COMPENSATED
    record.compensations += 1
    state.unbind_outputs(step_def.name, step_def.outputs)
    return step_compensated(step_def.name)


class ControlSystem:
    """Abstract facade over one simulated workflow control deployment."""

    architecture = "abstract"

    def __init__(
        self,
        config: SystemConfig | None = None,
        runtime: Runtime | None = None,
    ):
        self.config = config if config is not None else SystemConfig()
        self.metrics = MetricsCollector()
        self.rng = SimRandom(self.config.seed)
        # The execution substrate.  Engines construct against the
        # repro.runtime protocols only (the AST layering contract bans
        # repro.sim imports here); with no runtime given, the factory
        # resolves the deterministic simulated backend by name.
        if runtime is None:
            # rng is a child seed space so backends that jitter (the
            # asyncio executor's retry backoff) derive it from the system
            # seed instead of a fixed default — wall-clock chaos replays
            # then draw identical decision sequences from (seed, plan).
            runtime = build_runtime(
                self.config.runtime,
                metrics=self.metrics,
                latency=FixedLatency(self.config.latency),
                rng=self.rng.spawn("runtime"),
            )
        self.runtime = runtime
        #: The runtime's clock.  Named ``simulator`` since the simulated
        #: kernel was historically the only substrate; under the asyncio
        #: backend this is a :class:`~repro.runtime.realtime.RealtimeClock`.
        self.simulator = runtime.clock
        self.network = runtime.transport
        if self.network.metrics is not self.metrics:
            # Externally built runtimes carry their own collector; adopt
            # it so `system.metrics` stays the single source of truth.
            self.metrics = self.network.metrics
        self.trace = Trace(
            enabled=self.config.trace, capacity=self.config.trace_capacity,
            ring=self.config.trace_ring,
        )
        # Observability: the span tracer and metrics registry follow the
        # single `trace` switch so benchmark runs stay un-instrumented.
        self.tracer = Tracer(trace=self.trace, enabled=self.config.trace)
        self.registry = MetricsRegistry()
        if self.config.trace:
            self.network.registry = self.registry
            self.network.causal = MessageTracer(self.tracer)
            depth_hist = self.registry.histogram(
                "crew_event_queue_depth",
                "Simulator event-queue depth sampled at each event.",
                buckets=QUEUE_DEPTH_BUCKETS,
            )
            self.simulator.event_hook = (
                lambda time, depth: depth_hist.observe(depth)
            )
        # The flight recorder deliberately does NOT follow the trace
        # switch — its whole point is post-mortem context when full
        # tracing is off.  flight_capacity=0 strips it entirely.
        if self.config.flight_capacity > 0:
            capacity = self.config.flight_capacity
            self.network.flight_factory = lambda name: FlightRecorder(capacity)
            self.network.flight_sink = self._flight_sink
        #: Fault injector installed by :meth:`inject_faults` (None = the
        #: transport keeps its reliable persistent-queue semantics).
        self.faults = None
        self._workflow_spans: dict[str, Span] = {}
        self._recovery_spans: dict[str, Span] = {}
        self.programs = ProgramRegistry()
        self.schemas: dict[str, CompiledSchema] = {}
        self.specs: list[CoordinationSpec] = []
        self.assignment = AgentAssignment()
        self.outcomes: dict[str, InstanceOutcome] = {}
        self._instance_ids = itertools.count(1)

    # -- registration -----------------------------------------------------------

    def register_schema(self, schema: WorkflowSchema) -> CompiledSchema:
        """Compile and register a workflow class."""
        if schema.name in self.schemas:
            raise SchemaError(f"workflow class {schema.name!r} already registered")
        compiled = compile_schema(schema)
        self.schemas[schema.name] = compiled
        self._on_schema_registered(compiled)
        return compiled

    def register_program(self, name: str, program: StepProgram) -> None:
        self.programs.register(name, program)

    def add_coordination(self, spec: CoordinationSpec) -> None:
        """Install a coordinated-execution requirement (before any starts)."""
        for schema_name in spec.schemas():
            if schema_name not in self.schemas:
                raise SchemaError(
                    f"coordination spec {spec.name!r} references unregistered "
                    f"schema {schema_name!r}"
                )
        self.specs.append(spec)
        self._on_spec_added(spec)

    def compiled(self, schema_name: str) -> CompiledSchema:
        try:
            return self.schemas[schema_name]
        except KeyError:
            raise SchemaError(f"unknown workflow class {schema_name!r}") from None

    def specs_for(self, schema_name: str) -> list[CoordinationSpec]:
        return [s for s in self.specs if s.involves(schema_name)]

    # -- template methods --------------------------------------------------------

    def _on_schema_registered(self, compiled: CompiledSchema) -> None:
        """Hook for subclasses (agent assignment, directory setup)."""

    def _on_spec_added(self, spec: CoordinationSpec) -> None:
        """Hook for subclasses (authority placement)."""

    # -- public workflow API (front-end database operations) -----------------------

    #: How long the front-end database waits before re-issuing a WI whose
    #: target node was down (simulated seconds).
    FRONTEND_RETRY_INTERVAL = 1.0

    def schedule_frontend(self, delay: float, node: Any, fn, *args: Any) -> None:
        """Schedule a front-end WI against ``node``, deferring while it is down.

        The front-end database sits outside the fault domain: a WI issued
        against a crashed engine/agent must be retried until the node is
        back up, never executed on a down node — that would create
        volatile state the node's recovery replay cannot see.
        """

        def attempt() -> None:
            if not node.is_up:
                self.simulator.schedule(self.FRONTEND_RETRY_INTERVAL, attempt)
                return
            fn(*args)

        self.simulator.schedule(delay, attempt)

    def start_workflow(
        self, schema_name: str, inputs: Mapping[str, Any], delay: float = 0.0
    ) -> str:  # pragma: no cover - interface
        raise NotImplementedError

    def abort_workflow(self, instance_id: str, delay: float = 0.0) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def change_inputs(
        self, instance_id: str, changes: Mapping[str, Any], delay: float = 0.0
    ) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        raise NotImplementedError  # pragma: no cover - interface

    # -- observability hooks (shared by every architecture) ---------------------------

    def obs_instance_started(
        self,
        instance_id: str,
        schema_name: str,
        node: str,
        now: float,
        parent_instance: str | None = None,
    ) -> Span:
        """Count the start and open the workflow-instance span.

        Nested workflows pass ``parent_instance`` so their span nests
        under the parent's step that launched them.
        """
        self.metrics.instances_started += 1
        if not self.tracer.enabled:
            return NULL_SPAN
        parent = None
        if parent_instance is not None:
            parent = self._workflow_spans.get(parent_instance)
        span = self.tracer.start(
            instance_id, "workflow", node, now, parent=parent,
            schema=schema_name, architecture=self.architecture,
        )
        self._workflow_spans[instance_id] = span
        self.registry.counter(
            "crew_instances_started_total", "Workflow instances started.",
            architecture=self.architecture,
        ).inc()
        return span

    def workflow_span(self, instance_id: str) -> Span:
        """The open workflow span of an instance (NULL_SPAN if unknown)."""
        if not self.tracer.enabled:
            return NULL_SPAN
        return self._workflow_spans.get(instance_id, NULL_SPAN)

    def obs_step_dispatched(
        self, instance_id: str, step: str, node: str, now: float, **attrs: Any
    ) -> Span:
        """Open a step span (engine dispatch or local program launch)."""
        if not self.tracer.enabled:
            return NULL_SPAN
        parent = self._recovery_spans.get(instance_id)
        if parent is None or not parent.open:
            parent = self.workflow_span(instance_id)
        return self.tracer.start(
            f"{instance_id}/{step}", "step", node, now, parent=parent,
            instance=instance_id, step=step, **attrs,
        )

    def obs_step_finished(self, span: Span, now: float, **attrs: Any) -> None:
        """Close a step span and feed the step-latency histogram."""
        if not self.tracer.enabled or span.is_null or not span.open:
            return
        self.tracer.end(span, now, **attrs)
        self.registry.histogram(
            "crew_step_latency",
            "Step dispatch-to-result latency in simulated time units.",
            buckets=STEP_LATENCY_BUCKETS,
            architecture=self.architecture,
        ).observe(span.duration)

    def obs_step_done(self, instance_id: str, step: str, now: float) -> None:
        """A step completed successfully; closes a recovery episode whose
        rollback origin just re-established itself."""
        if not self.tracer.enabled:
            return
        episode = self._recovery_spans.get(instance_id)
        if (episode is not None and episode.open
                and episode.attrs.get("origin") == step):
            self._obs_end_recovery(instance_id, now, resolved="origin-reexecuted")

    def obs_recovery_started(
        self,
        instance_id: str,
        node: str,
        now: float,
        origin: str | None,
        epoch: int,
        mechanism: str,
    ) -> Span:
        """Open a recovery-episode span (rollback / unhandled failure).

        A newer rollback supersedes a still-open episode: the old span is
        closed here so episodes never overlap for one instance.
        """
        if not self.tracer.enabled:
            return NULL_SPAN
        if instance_id in self._recovery_spans:
            self._obs_end_recovery(instance_id, now, resolved="superseded")
        span = self.tracer.start(
            f"recovery:{instance_id}#{epoch}", "recovery", node, now,
            parent=self.workflow_span(instance_id),
            instance=instance_id, origin=origin or "-", epoch=epoch,
            mechanism=mechanism,
        )
        self._recovery_spans[instance_id] = span
        self.registry.counter(
            "crew_recoveries_total", "Recovery episodes (rollbacks) started.",
            architecture=self.architecture,
        ).inc()
        return span

    def _obs_end_recovery(self, instance_id: str, now: float, **attrs: Any) -> None:
        episode = self._recovery_spans.pop(instance_id, None)
        if episode is None or not episode.open:
            return
        self.tracer.end(episode, now, **attrs)
        self.registry.histogram(
            "crew_recovery_duration",
            "Rollback-to-reestablishment duration in simulated time units.",
            buckets=RECOVERY_BUCKETS,
            architecture=self.architecture,
        ).observe(episode.duration)

    def obs_ocr_planned(
        self, instance_id: str, node: str, now: float, plan: Any
    ) -> None:
        """Instant span for a non-trivial OCR decision (re-triggered step)."""
        if not self.tracer.enabled:
            return
        parent = self._recovery_spans.get(instance_id)
        if parent is None or not parent.open:
            parent = self.workflow_span(instance_id)
        self.tracer.instant(
            f"ocr:{plan.step}", "recovery", node, now, parent=parent,
            instance=instance_id, **plan.span_attrs(),
        )

    def obs_coordination(
        self, instance_id: str | None, node: str, now: float, op: str,
        spec_name: str | None = None, **attrs: Any,
    ) -> None:
        """Instant coordination-round span plus the per-op counter."""
        if not self.tracer.enabled:
            return
        parent = (self.workflow_span(instance_id)
                  if instance_id is not None else None)
        self.tracer.instant(
            f"coord:{op}", "coordination", node, now, parent=parent,
            spec=spec_name or "-", **attrs,
        )
        self.registry.counter(
            "crew_coordination_ops_total", "Coordination operations performed.",
            op=op,
        ).inc()

    def rule_fire_hook(self, node: str, instance_id: str):
        """A RuleEngine ``fire_hook`` for one instance, or None when off.

        Emits an instant rule span under the instance's workflow span and
        samples the pending-rule-table depth after each firing.
        """
        if not self.tracer.enabled:
            return None
        fired = self.registry.counter(
            "crew_rules_fired_total", "ECA rules fired.", node=node,
        )
        depth = self.registry.histogram(
            "crew_pending_rules",
            "Pending-rule-table depth sampled after each rule firing.",
            buckets=PENDING_RULE_BUCKETS,
        )

        def hook(rule: Any, engine: Any) -> None:
            fired.inc()
            depth.observe(engine.pending_count())
            self.tracer.instant(
                f"rule:{rule.rule_id}", "rule", node, self.simulator.now,
                parent=self.workflow_span(instance_id),
                instance=instance_id, step=rule.step, kind=rule.kind,
            )

        return hook

    def _flight_sink(
        self, time: float, node: str, reason: str,
        events: list[dict], **detail: Any,
    ) -> None:
        """Persist a flight-recorder snapshot (bypasses the trace switch)."""
        self.trace.snapshot(
            time, node, "flight.snapshot", reason=reason, events=events,
            **detail,
        )

    # -- fault injection ---------------------------------------------------------------

    def inject_faults(self, plan, retry=None):
        """Install a deterministic fault injector over this system's transport.

        ``plan`` is a :class:`repro.runtime.faults.FaultPlan`; ``retry`` an
        optional :class:`repro.runtime.retry.RetryPolicy` (defaulted)
        driving transport retransmissions and the engines' step-retry
        watchdogs.  The injector draws from a child seed space of the
        system's master seed (``rng.spawn("faults")``), so installing it
        never perturbs the workload's own random streams, and the whole
        run replays bit-for-bit from ``(seed, plan)`` on the simulated
        backend (the asyncio backend replays the same seeded decision
        sequence on wall-clock time — outcome-level reproducibility).
        Call before :meth:`run`; returns the installed injector.

        Only runtimes advertising :meth:`supports_faults` accept a plan.
        """
        if self.faults is not None:
            raise WorkloadError("fault injector already installed")
        if not self.runtime.supports_faults():
            raise WorkloadError(
                f"runtime {self.runtime.name!r} does not support "
                "deterministic fault injection"
            )
        injector = self.runtime.install_faults(
            plan, self.rng.spawn("faults"),
            retry=retry if retry is not None else RetryPolicy(),
        )
        injector.on_fault = self._on_fault
        self.faults = injector
        return injector

    def _on_fault(self, time: float, kind: str, **detail: Any) -> None:
        """Record one injected fault decision into the trace."""
        self.trace.record(time, "faults", f"fault.{kind}", **detail)

    # -- driving the simulation -------------------------------------------------------

    def run(self, until: float | None = None) -> int:
        """Run the simulation to quiescence (or ``until``).

        Only meaningful on clocks that own their event loop (the DES
        kernel).  The asyncio runtime is driven by awaiting
        :meth:`repro.runtime.realtime.RealtimeRuntime.join` instead.
        """
        runner = getattr(self.simulator, "run", None)
        if runner is None:
            raise WorkloadError(
                f"runtime {self.runtime.name!r} has no synchronous run(); "
                "await the runtime's join() from the owning event loop"
            )
        fired = runner(until=until, max_events=self.config.max_events)
        if self.config.trace:
            self.registry.gauge(
                "crew_sim_events_processed", "Simulation events processed.",
            ).set(self.simulator.events_processed)
            self.registry.gauge(
                "crew_sim_time", "Current simulated time.",
            ).set(self.simulator.now)
            self.registry.gauge(
                "crew_trace_dropped_records", "Trace records lost to capacity.",
            ).set(self.trace.dropped)
        return fired

    def new_instance_id(self, schema_name: str) -> str:
        return f"{schema_name}-{next(self._instance_ids)}"

    def reserve_instance_ids(self, floor: int) -> None:
        """Advance the instance-id counter past ``floor``.

        Recovery boot paths (``repro serve --state-dir``) call this with
        the highest instance index found in the durable log before
        re-driving in-flight work, so instance ids minted after a crash
        can never collide with ids the previous incarnation already
        acknowledged.
        """
        current = next(self._instance_ids)
        self._instance_ids = itertools.count(max(current, floor + 1))

    def _note_owner(self, instance_id: str, node_name: str) -> None:
        """Hook: record which node controls an instance (parallel control
        tracks ownership; other architectures don't need to)."""

    # -- outcomes ----------------------------------------------------------------------

    def outcome(self, instance_id: str) -> InstanceOutcome:
        try:
            return self.outcomes[instance_id]
        except KeyError:
            raise FrontEndError(
                f"instance {instance_id!r} has not finished (or does not exist)"
            ) from None

    def committed_instances(self) -> list[str]:
        return sorted(
            iid for iid, out in self.outcomes.items() if out.committed
        )

    def aborted_instances(self) -> list[str]:
        return sorted(
            iid
            for iid, out in self.outcomes.items()
            if out.status is InstanceStatus.ABORTED
        )

    def _record_outcome(
        self,
        instance_id: str,
        schema_name: str,
        status: InstanceStatus,
        outputs: Mapping[str, Any],
        now: float,
    ) -> None:
        self.outcomes[instance_id] = InstanceOutcome(
            instance_id=instance_id,
            schema_name=schema_name,
            status=status,
            outputs=dict(outputs),
            finished_at=now,
        )
        if status is InstanceStatus.COMMITTED:
            self.metrics.instances_committed += 1
        elif status is InstanceStatus.ABORTED:
            self.metrics.instances_aborted += 1
        if not self.tracer.enabled:
            return
        self._obs_end_recovery(instance_id, now, resolved=status.name.lower())
        span = self._workflow_spans.pop(instance_id, None)
        if span is not None and span.open:
            self.tracer.end(span, now, status=status.name)
            self.registry.histogram(
                "crew_instance_makespan",
                "Workflow start-to-finish time in simulated time units.",
                buckets=MAKESPAN_BUCKETS,
                architecture=self.architecture,
            ).observe(span.duration)
        self.registry.counter(
            "crew_instances_finished_total", "Workflow instances finished.",
            architecture=self.architecture, status=status.name,
        ).inc()

    @staticmethod
    def workflow_outputs(
        compiled: CompiledSchema, state: InstanceState
    ) -> dict[str, Any]:
        """Resolve the schema's declared workflow outputs from the data table."""
        outputs: dict[str, Any] = {}
        for name, ref in compiled.schema.outputs.items():
            if ref in state.data:
                outputs[name] = state.data[ref]
        return outputs
