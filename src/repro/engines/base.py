"""Shared machinery of the three workflow control architectures.

:class:`ControlSystem` is the public facade: register schemas, programs
and coordination specs, start/abort instances, drive the simulation and
read outcomes.  The concrete systems —
:class:`~repro.engines.centralized.CentralizedControlSystem`,
:class:`~repro.engines.parallel.ParallelControlSystem` and
:class:`~repro.engines.distributed.DistributedControlSystem` — differ in
*where* enactment runs and *which* interactions are physical messages;
the enactment semantics (rules, OCR, coordination) are shared.

The module also hosts the architecture-neutral execution-state helpers
(recording results, compensations and reuses in the instance tables) used
by every node implementation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.programs import ProgramRegistry, StepProgram
from repro.errors import FrontEndError, SchemaError, WorkloadError
from repro.model.compiler import CompiledSchema, compile_schema
from repro.model.coordination_spec import (
    CoordinationSpec,
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
)
from repro.model.schema import StepDef, WorkflowSchema
from repro.rules.events import step_compensated, step_done, step_fail
from repro.sim.kernel import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.network import FixedLatency, Network
from repro.sim.rng import SimRandom
from repro.sim.tracing import Trace
from repro.storage.tables import InstanceState, InstanceStatus, StepStatus

__all__ = [
    "AgentAssignment",
    "ControlSystem",
    "InstanceOutcome",
    "SystemConfig",
    "governed_step_count",
    "record_compensation",
    "record_execution_failure",
    "record_execution_success",
    "record_reuse",
]


@dataclass
class SystemConfig:
    """Tunable knobs shared by all architectures.

    ``work_time_scale`` converts step cost units into simulated execution
    time; ``successor_selection`` picks the distributed executor election
    strategy (``"hash"`` — deterministic, matches the paper's message
    expression ``s·a + f`` — or ``"load"``, which adds StateInformation
    probe traffic); the failure-recovery knobs control the distributed
    StepStatus polling/takeover machinery.
    """

    seed: int = 0
    latency: float = 1.0
    trace: bool = True
    trace_capacity: int | None = 500_000
    work_time_scale: float = 0.1
    successor_selection: str = "hash"
    dispatch_probes: bool = True
    agent_failure_recovery: bool = True
    step_status_timeout: float = 50.0
    step_status_poll_interval: float = 25.0
    purge_interval: float | None = None
    max_loop_iterations: int = 100
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.successor_selection not in ("hash", "load"):
            raise WorkloadError(
                f"successor_selection must be 'hash' or 'load', "
                f"got {self.successor_selection!r}"
            )


@dataclass
class InstanceOutcome:
    """Public record of how one instance ended."""

    instance_id: str
    schema_name: str
    status: InstanceStatus
    outputs: dict[str, Any] = field(default_factory=dict)
    finished_at: float | None = None

    @property
    def committed(self) -> bool:
        return self.status is InstanceStatus.COMMITTED


class AgentAssignment:
    """Static (schema, step) -> eligible agents mapping.

    "This information is static and is available at the agent after the
    workflow schema has been compiled."  The default policy spreads steps
    round-robin over the agent pool with ``agents_per_step`` eligible
    agents each (Table 3's parameter ``a``).
    """

    def __init__(self) -> None:
        self._eligible: dict[tuple[str, str], tuple[str, ...]] = {}

    def assign(self, schema_name: str, step: str, agents: Sequence[str]) -> None:
        if not agents:
            raise SchemaError(f"step {schema_name}.{step} needs at least one agent")
        self._eligible[(schema_name, step)] = tuple(agents)

    def assign_round_robin(
        self, compiled: CompiledSchema, pool: Sequence[str], agents_per_step: int = 1
    ) -> None:
        if agents_per_step > len(pool):
            raise SchemaError(
                f"agents_per_step={agents_per_step} exceeds pool size {len(pool)}"
            )
        for index, step in enumerate(compiled.schema.steps):
            chosen = tuple(
                pool[(index + j) % len(pool)] for j in range(agents_per_step)
            )
            self._eligible[(compiled.name, step)] = chosen

    def eligible(self, schema_name: str, step: str) -> tuple[str, ...]:
        try:
            return self._eligible[(schema_name, step)]
        except KeyError:
            raise SchemaError(
                f"no agents assigned for step {schema_name}.{step}"
            ) from None

    def has(self, schema_name: str, step: str) -> bool:
        return (schema_name, step) in self._eligible

    def items(self) -> Iterable[tuple[tuple[str, str], tuple[str, ...]]]:
        return self._eligible.items()


def governed_step_count(
    compiled: CompiledSchema, specs: Iterable[CoordinationSpec]
) -> int:
    """Number of governed steps of a schema across its coordination specs.

    This is the paper's ``me + ro + rd`` per-workflow factor: relative
    ordering counts its governed steps, mutual exclusion the steps of its
    region, and rollback dependency its trigger/target step.
    """
    governed: set[tuple[str, str]] = set()
    name = compiled.name
    for spec in specs:
        if isinstance(spec, RelativeOrderSpec):
            for side, steps in ((spec.schema_a, spec.steps_a), (spec.schema_b, spec.steps_b)):
                if side == name:
                    governed.update((spec.name, s) for s in steps)
        elif isinstance(spec, MutualExclusionSpec):
            for side, region in ((spec.schema_a, spec.region_a), (spec.schema_b, spec.region_b)):
                if side == name:
                    first, last = region
                    members = (
                        (compiled.graph.descendants_map[first] | {first})
                        & (compiled.graph.ancestors_map[last] | {last})
                    )
                    governed.update((spec.name, s) for s in members)
        elif isinstance(spec, RollbackDependencySpec):
            if spec.schema_a == name:
                governed.add((spec.name, spec.trigger_step_a))
            if spec.schema_b == name:
                governed.add((spec.name, spec.rollback_to_b))
    return len(governed)


# -- instance-state transition helpers (shared by every node type) -------------


def record_execution_success(
    state: InstanceState,
    step_def: StepDef,
    inputs: Mapping[str, Any],
    outputs: Mapping[str, Any],
    now: float,
    agent: str | None,
) -> str:
    """Record a successful execution; returns the event token to post."""
    record = state.record(step_def.name)
    record.status = StepStatus.DONE
    record.executions += 1
    record.last_inputs = dict(inputs)
    record.last_outputs = dict(outputs)
    record.done_at = now
    record.exec_seq = state.next_exec_seq()
    record.agent = agent
    state.bind_outputs(step_def.name, outputs)
    return step_done(step_def.name)


def record_execution_failure(
    state: InstanceState,
    step_def: StepDef,
    inputs: Mapping[str, Any],
    now: float,
    agent: str | None,
) -> str:
    """Record a logical step failure; returns the event token to post."""
    record = state.record(step_def.name)
    record.status = StepStatus.FAILED
    record.executions += 1
    record.last_inputs = dict(inputs)
    record.done_at = None
    record.agent = agent
    return step_fail(step_def.name)


def record_reuse(state: InstanceState, step_def: StepDef, now: float) -> str:
    """Record an OCR result reuse; returns the ``step.done`` token to post.

    The previous outputs are re-bound (they may have been produced in an
    earlier recovery epoch) and the execution-order stamp is refreshed so
    compensation-set ordering reflects the re-executed history.
    """
    record = state.record(step_def.name)
    record.reuses += 1
    record.status = StepStatus.DONE
    record.done_at = now
    record.exec_seq = state.next_exec_seq()
    state.bind_outputs(step_def.name, record.last_outputs)
    return step_done(step_def.name)


def record_compensation(
    state: InstanceState, step_def: StepDef, kind: str
) -> str:
    """Record a (complete or partial) compensation; returns the event token.

    A *partial* compensation leaves the step logically DONE-but-dirty; the
    caller immediately re-executes it incrementally, so for table purposes
    we mark it COMPENSATED until the re-execution lands.
    """
    record = state.record(step_def.name)
    record.status = StepStatus.COMPENSATED
    record.compensations += 1
    state.unbind_outputs(step_def.name, step_def.outputs)
    return step_compensated(step_def.name)


class ControlSystem:
    """Abstract facade over one simulated workflow control deployment."""

    architecture = "abstract"

    def __init__(self, config: SystemConfig | None = None):
        self.config = config if config is not None else SystemConfig()
        self.simulator = Simulator()
        self.metrics = MetricsCollector()
        self.rng = SimRandom(self.config.seed)
        self.network = Network(
            self.simulator, self.metrics, FixedLatency(self.config.latency)
        )
        self.trace = Trace(
            enabled=self.config.trace, capacity=self.config.trace_capacity
        )
        self.programs = ProgramRegistry()
        self.schemas: dict[str, CompiledSchema] = {}
        self.specs: list[CoordinationSpec] = []
        self.assignment = AgentAssignment()
        self.outcomes: dict[str, InstanceOutcome] = {}
        self._instance_ids = itertools.count(1)

    # -- registration -----------------------------------------------------------

    def register_schema(self, schema: WorkflowSchema) -> CompiledSchema:
        """Compile and register a workflow class."""
        if schema.name in self.schemas:
            raise SchemaError(f"workflow class {schema.name!r} already registered")
        compiled = compile_schema(schema)
        self.schemas[schema.name] = compiled
        self._on_schema_registered(compiled)
        return compiled

    def register_program(self, name: str, program: StepProgram) -> None:
        self.programs.register(name, program)

    def add_coordination(self, spec: CoordinationSpec) -> None:
        """Install a coordinated-execution requirement (before any starts)."""
        for schema_name in spec.schemas():
            if schema_name not in self.schemas:
                raise SchemaError(
                    f"coordination spec {spec.name!r} references unregistered "
                    f"schema {schema_name!r}"
                )
        self.specs.append(spec)
        self._on_spec_added(spec)

    def compiled(self, schema_name: str) -> CompiledSchema:
        try:
            return self.schemas[schema_name]
        except KeyError:
            raise SchemaError(f"unknown workflow class {schema_name!r}") from None

    def specs_for(self, schema_name: str) -> list[CoordinationSpec]:
        return [s for s in self.specs if s.involves(schema_name)]

    # -- template methods --------------------------------------------------------

    def _on_schema_registered(self, compiled: CompiledSchema) -> None:
        """Hook for subclasses (agent assignment, directory setup)."""

    def _on_spec_added(self, spec: CoordinationSpec) -> None:
        """Hook for subclasses (authority placement)."""

    # -- public workflow API (front-end database operations) -----------------------

    def start_workflow(
        self, schema_name: str, inputs: Mapping[str, Any], delay: float = 0.0
    ) -> str:  # pragma: no cover - interface
        raise NotImplementedError

    def abort_workflow(self, instance_id: str, delay: float = 0.0) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def change_inputs(
        self, instance_id: str, changes: Mapping[str, Any], delay: float = 0.0
    ) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        raise NotImplementedError  # pragma: no cover - interface

    # -- driving the simulation -------------------------------------------------------

    def run(self, until: float | None = None) -> int:
        """Run the simulation to quiescence (or ``until``)."""
        return self.simulator.run(until=until, max_events=self.config.max_events)

    def new_instance_id(self, schema_name: str) -> str:
        return f"{schema_name}-{next(self._instance_ids)}"

    def _note_owner(self, instance_id: str, node_name: str) -> None:
        """Hook: record which node controls an instance (parallel control
        tracks ownership; other architectures don't need to)."""

    # -- outcomes ----------------------------------------------------------------------

    def outcome(self, instance_id: str) -> InstanceOutcome:
        try:
            return self.outcomes[instance_id]
        except KeyError:
            raise FrontEndError(
                f"instance {instance_id!r} has not finished (or does not exist)"
            ) from None

    def committed_instances(self) -> list[str]:
        return sorted(
            iid for iid, out in self.outcomes.items() if out.committed
        )

    def aborted_instances(self) -> list[str]:
        return sorted(
            iid
            for iid, out in self.outcomes.items()
            if out.status is InstanceStatus.ABORTED
        )

    def _record_outcome(
        self,
        instance_id: str,
        schema_name: str,
        status: InstanceStatus,
        outputs: Mapping[str, Any],
        now: float,
    ) -> None:
        self.outcomes[instance_id] = InstanceOutcome(
            instance_id=instance_id,
            schema_name=schema_name,
            status=status,
            outputs=dict(outputs),
            finished_at=now,
        )
        if status is InstanceStatus.COMMITTED:
            self.metrics.instances_committed += 1
        elif status is InstanceStatus.ABORTED:
            self.metrics.instances_aborted += 1

    @staticmethod
    def workflow_outputs(
        compiled: CompiledSchema, state: InstanceState
    ) -> dict[str, Any]:
        """Resolve the schema's declared workflow outputs from the data table."""
        outputs: dict[str, Any] = {}
        for name, ref in compiled.schema.outputs.items():
            if ref in state.data:
                outputs[name] = state.data[ref]
        return outputs
