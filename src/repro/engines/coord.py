"""Coordination spec indexing and authority bundles for the engines.

:class:`SpecIndex` answers the static questions every node asks while
navigating ("is this step governed by a relative-ordering pair?", "does
this step open a mutual-exclusion region?"); :class:`AuthorityBundle`
holds the live authority state machines for the specs one node is the
authority for (the engine in centralized control, a deterministic engine
or agent otherwise).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.coordination import (
    MutualExclusionAuthority,
    RelativeOrderAuthority,
    RollbackDependencyAuthority,
)
from repro.errors import CoordinationError
from repro.model.coordination_spec import (
    CoordinationSpec,
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
)
from repro.storage.tables import InstanceState

__all__ = ["AuthorityBundle", "SpecIndex"]


class SpecIndex:
    """Static lookups over the installed coordination specs."""

    def __init__(self) -> None:
        self.ro: list[RelativeOrderSpec] = []
        self.mx: list[MutualExclusionSpec] = []
        self.rd: list[RollbackDependencySpec] = []

    def add(self, spec: CoordinationSpec) -> None:
        if isinstance(spec, RelativeOrderSpec):
            self.ro.append(spec)
        elif isinstance(spec, MutualExclusionSpec):
            self.mx.append(spec)
        elif isinstance(spec, RollbackDependencySpec):
            self.rd.append(spec)
        else:
            raise CoordinationError(f"unknown coordination spec type {type(spec)!r}")

    def all_specs(self) -> list[CoordinationSpec]:
        return [*self.ro, *self.mx, *self.rd]

    def specs_for(self, schema: str) -> list[CoordinationSpec]:
        return [s for s in self.all_specs() if s.involves(schema)]

    # -- relative ordering -------------------------------------------------------

    def ro_roles(self, schema: str, step: str) -> list[tuple[RelativeOrderSpec, int]]:
        """(spec, pair index) for every RO spec governing this step."""
        roles = []
        for spec in self.ro:
            for side, steps in ((spec.schema_a, spec.steps_a), (spec.schema_b, spec.steps_b)):
                if schema == side and step in steps:
                    roles.append((spec, steps.index(step)))
                    break
        return roles

    def ro_governed_pairs(self, schema: str) -> list[tuple[RelativeOrderSpec, int, str]]:
        """All (spec, pair index, step) the schema participates in."""
        out = []
        for spec in self.ro:
            for side, steps in ((spec.schema_a, spec.steps_a), (spec.schema_b, spec.steps_b)):
                if schema == side:
                    out.extend((spec, k, s) for k, s in enumerate(steps))
                    break
        return out

    # -- mutual exclusion ----------------------------------------------------------

    def mx_specs(self, schema: str) -> list[MutualExclusionSpec]:
        return [s for s in self.mx if s.involves(schema)]

    def mx_region_first(self, schema: str, step: str) -> list[MutualExclusionSpec]:
        return [s for s in self.mx_specs(schema) if s.region_of(schema)[0] == step]

    def mx_region_last(self, schema: str, step: str) -> list[MutualExclusionSpec]:
        return [s for s in self.mx_specs(schema) if s.region_of(schema)[1] == step]

    # -- rollback dependency -----------------------------------------------------------

    def rd_triggers(self, schema: str) -> list[RollbackDependencySpec]:
        return [s for s in self.rd if s.schema_a == schema]

    def rd_targets(self, schema: str, step: str) -> list[RollbackDependencySpec]:
        return [s for s in self.rd if s.schema_b == schema and s.rollback_to_b == step]

    # -- conflict binding ----------------------------------------------------------------

    @staticmethod
    def conflict_key_value(spec: CoordinationSpec, state: InstanceState) -> Hashable | None:
        """The instance's conflict-key value (None = conflicts with all)."""
        if spec.conflict_key is None:
            return None
        value = state.data.get(spec.conflict_key)
        if isinstance(value, Hashable):
            return value
        return str(value)


class AuthorityBundle:
    """Live authority state machines, keyed by spec name."""

    def __init__(self) -> None:
        self.ro: dict[str, RelativeOrderAuthority] = {}
        self.mx: dict[str, MutualExclusionAuthority] = {}
        self.rd: dict[str, RollbackDependencyAuthority] = {}

    def host(self, spec: CoordinationSpec) -> None:
        if isinstance(spec, RelativeOrderSpec):
            self.ro[spec.name] = RelativeOrderAuthority(spec)
        elif isinstance(spec, MutualExclusionSpec):
            self.mx[spec.name] = MutualExclusionAuthority(spec)
        elif isinstance(spec, RollbackDependencySpec):
            self.rd[spec.name] = RollbackDependencyAuthority(spec)
        else:  # pragma: no cover - defensive
            raise CoordinationError(f"unknown coordination spec type {type(spec)!r}")

    def hosts(self, spec_name: str) -> bool:
        return spec_name in self.ro or spec_name in self.mx or spec_name in self.rd

    def withdraw_instance(self, instance_id: str) -> list:
        """Remove an aborted instance everywhere; returns freed RO grants."""
        grants = []
        for authority in self.ro.values():
            grants.extend(authority.withdraw(instance_id))
        for authority in self.rd.values():
            authority.withdraw(instance_id)
        return grants
