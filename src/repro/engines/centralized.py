"""Centralized workflow control (paper Section 2, Figure 1).

One :class:`CentralEngineNode` owns all workflow state in a WFDB and
performs all navigation; :class:`ApplicationAgentNode` instances only
execute step programs.  Per step execution the engine exchanges
``2·a`` physical messages with the agent pool (``a-1`` StateInformation
probe round-trips to pick the least-loaded eligible agent plus the
StepExecute/StepResult round-trip), matching the paper's Table 4 count
``2·s·a`` per instance.

Failure handling (rollback + OCR re-execution), coordinated execution and
abort/input-change processing all run *inside* the engine — coordinated
execution costs load but zero messages, the paper's headline advantage of
centralized control under heavy coordination requirements.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.coordination import mx_clearance_token, ro_clearance_token
from repro.core.ocr import plan_step_action, stale_compensation_chain
from repro.core.programs import ExecutionContext
from repro.core.recovery import RecoveryTokens, abandoned_branch_compensation
from repro.engines.base import (
    ControlSystem,
    SystemConfig,
    governed_step_count,
    record_compensation,
    record_execution_failure,
    record_execution_success,
    record_reuse,
)
from repro.engines.coord import AuthorityBundle, SpecIndex
from repro.errors import FrontEndError, SchemaError, SimulationError
from repro.model.compiler import CompiledSchema
from repro.model.coordination_spec import CoordinationSpec
from repro.rules.engine import RuleEngine, RuleInstance
from repro.rules.events import WF_START, step_done
from repro.sim.metrics import Mechanism
from repro.sim.network import Message
from repro.sim.node import Node
from repro.storage.tables import InstanceState, InstanceStatus, StepStatus
from repro.storage.wfdb import WorkflowDatabase

__all__ = ["ApplicationAgentNode", "CentralEngineNode", "CentralizedControlSystem"]

# Internal (non-WI) protocol verbs between engine and agents.
VERB_STEP_RESULT = "StepResult"
VERB_COMPENSATE_ACK = "CompensateAck"
VERB_STATE_INFO_REPLY = "StateInformationReply"


class ApplicationAgentNode(Node):
    """A "dumb" application agent: executes and compensates step programs.

    The agent knows nothing about workflow structure; it receives fully
    resolved input values, runs the (black box) program after the step's
    simulated service time, and reports the result.
    """

    def __init__(self, name: str, system: "ControlSystem"):
        super().__init__(name, system.simulator, system.network)
        self.system = system
        self.executing = 0

    def handle_message(self, message: Message) -> None:
        handler = {
            "StepExecute": self._on_step_execute,
            "StepCompensate": self._on_step_compensate,
            "StateInformation": self._on_state_information,
        }.get(message.interface)
        if handler is None:
            raise SimulationError(
                f"agent {self.name} cannot handle {message.interface!r}"
            )
        handler(message)

    # -- execution -------------------------------------------------------------

    def _on_step_execute(self, message: Message) -> None:
        payload = message.payload
        self.executing += 1
        cost = payload["cost"]
        delay = cost * self.system.config.work_time_scale
        self.simulator.schedule(delay, self._complete_step, message)

    def _complete_step(self, message: Message) -> None:
        payload = message.payload
        self.executing -= 1
        schema_name = payload["schema_name"]
        step = payload["step"]
        compiled = self.system.compiled(schema_name)
        step_def = compiled.schema.steps[step]
        program = self.system.programs.get(step_def.program, step_def.outputs)
        ctx = ExecutionContext(
            schema_name=schema_name,
            instance_id=payload["instance_id"],
            step=step,
            attempt=payload["attempt"],
            now=self.simulator.now,
            node=self.name,
            rng=self.system.rng.stream(f"prog:{payload['instance_id']}:{step}"),
        )
        result = program.execute(payload["inputs"], ctx)
        self.network.metrics.record_work(self.name, "execute", payload["cost"])
        self.send(
            message.src,
            VERB_STEP_RESULT,
            {
                "instance_id": payload["instance_id"],
                "schema_name": schema_name,
                "step": step,
                "epoch": payload["epoch"],
                "success": result.success,
                "outputs": result.outputs,
                "error": result.error,
            },
            Mechanism(payload["mechanism"]),
        )

    # -- compensation -------------------------------------------------------------

    def _on_step_compensate(self, message: Message) -> None:
        payload = message.payload
        delay = payload["cost"] * self.system.config.work_time_scale
        self.simulator.schedule(delay, self._complete_compensation, message)

    def _complete_compensation(self, message: Message) -> None:
        payload = message.payload
        self.network.metrics.record_work(self.name, "compensate", payload["cost"])
        self.send(
            message.src,
            VERB_COMPENSATE_ACK,
            {
                "instance_id": payload["instance_id"],
                "step": payload["step"],
                "chain_id": payload["chain_id"],
            },
            Mechanism(payload["mechanism"]),
        )

    # -- probing --------------------------------------------------------------------

    def _on_state_information(self, message: Message) -> None:
        self.send(
            message.src,
            VERB_STATE_INFO_REPLY,
            {"probe_id": message.payload["probe_id"], "load": self.executing},
            Mechanism(message.payload["mechanism"]),
        )


@dataclass
class _Inflight:
    epoch: int
    inputs: dict[str, Any]
    attempt: int
    mechanism: Mechanism
    agent: str
    span: Any = None  # open step Span (or NULL_SPAN when tracing is off)


@dataclass
class _ProbeWait:
    instance_id: str
    step: str
    waiting: set[str]
    loads: dict[str, int]
    cost: float
    mechanism: Mechanism
    inputs: dict[str, Any]
    attempt: int


@dataclass
class _CompChain:
    instance_id: str
    steps: list[str]
    mechanism: Mechanism
    on_done: Any  # zero-arg callable


@dataclass
class _Runtime:
    """Volatile per-instance enactment state at the engine."""

    state: InstanceState
    compiled: CompiledSchema
    engine: RuleEngine
    reported: set[str] = field(default_factory=set)
    recovery_mechanism: Mechanism = Mechanism.NORMAL
    loop_fires: Counter = field(default_factory=Counter)
    mx_state: dict[str, str] = field(default_factory=dict)  # spec -> none/requested/held/released
    governed: int = 0
    parent_link: tuple[str, str] | None = None
    nested_children: dict[str, str] = field(default_factory=dict)  # step -> child id


class CentralEngineNode(Node):
    """The central workflow engine: owns the WFDB and navigates everything."""

    def __init__(self, name: str, system: "CentralizedControlSystem"):
        super().__init__(name, system.simulator, system.network)
        self.system = system
        self.config = system.config
        self.wfdb = WorkflowDatabase()
        self.spec_index = SpecIndex()
        self.authorities = AuthorityBundle()
        self.runtimes: dict[str, _Runtime] = {}
        self._inflight: dict[tuple[str, str], _Inflight] = {}
        self._probes: dict[int, _ProbeWait] = {}
        self._chains: dict[int, _CompChain] = {}
        self._ids = itertools.count(1)
        self._agent_load_view: Counter = Counter()

    # ------------------------------------------------------------------ helpers

    @property
    def trace(self):
        return self.system.trace

    def _charge(self, mechanism: Mechanism, units: float = 1.0) -> None:
        self.charge(units, mechanism)

    def runtime(self, instance_id: str) -> _Runtime:
        try:
            return self.runtimes[instance_id]
        except KeyError:
            raise FrontEndError(f"unknown or finished instance {instance_id!r}") from None

    # ------------------------------------------------------- front-end operations

    def workflow_start(
        self,
        schema_name: str,
        instance_id: str,
        inputs: Mapping[str, Any],
        parent_link: tuple[str, str] | None = None,
    ) -> None:
        """WorkflowStart WI (invoked locally by the front-end database)."""
        compiled = self.system.compiled(schema_name)
        state = self.wfdb.create_instance(schema_name, instance_id, inputs)
        engine = RuleEngine(
            compiled,
            action=lambda rule, iid=instance_id: self._on_rule(iid, rule),
            env_provider=state.env,
            fire_hook=self.system.rule_fire_hook(self.name, instance_id),
        )
        runtime = _Runtime(
            state=state,
            compiled=compiled,
            engine=engine,
            governed=governed_step_count(compiled, self.spec_index.specs_for(schema_name)),
            parent_link=parent_link,
        )
        self.runtimes[instance_id] = runtime
        self.system._note_owner(instance_id, self.name)
        self._install_preconditions(runtime)
        self.system.obs_instance_started(
            instance_id, schema_name, self.name, self.simulator.now,
            parent_instance=parent_link[0] if parent_link else None,
        )
        self.trace.record(self.simulator.now, self.name, "workflow.start",
                          instance=instance_id, schema=schema_name)
        self._charge(Mechanism.NORMAL)
        # Mutual-exclusion regions opening at the start step are acquired now.
        for spec in self.spec_index.mx_region_first(schema_name, compiled.start_step):
            self._mx_acquire(runtime, spec)
        engine.post_event(WF_START, self.simulator.now)

    def workflow_abort(self, instance_id: str) -> None:
        """WorkflowAbort WI: reject if committed, else compensate + halt."""
        status = self.wfdb.status(instance_id)
        if status is InstanceStatus.COMMITTED:
            # "any request for aborting the workflow ... after a workflow
            # commit will be rejected."
            self.trace.record(self.simulator.now, self.name, "abort.rejected",
                              instance=instance_id, reason="committed")
            return
        if status is InstanceStatus.ABORTED:
            return
        runtime = self.runtime(instance_id)
        self.trace.record(self.simulator.now, self.name, "workflow.abort.request",
                          instance=instance_id)
        self._charge(Mechanism.ABORT)
        # Halt everything first: bump the epoch so in-flight results are stale.
        runtime.state.recovery_epoch += 1
        self.system.obs_recovery_started(
            instance_id, self.name, self.simulator.now, origin=None,
            epoch=runtime.state.recovery_epoch, mechanism="abort",
        )
        schema = runtime.compiled.schema
        to_compensate = [
            s
            for s in schema.abort_compensation_steps
            if runtime.state.step_status(s) is StepStatus.DONE
        ]
        ordered = sorted(
            to_compensate,
            key=lambda s: runtime.state.steps[s].exec_seq or 0,
            reverse=True,
        )
        self._compensate_chain(
            runtime,
            ordered,
            Mechanism.ABORT,
            on_done=lambda: self._finish_abort(instance_id),
        )

    def _finish_abort(self, instance_id: str) -> None:
        runtime = self.runtimes.pop(instance_id, None)
        if runtime is None:
            return
        for key in [k for k in self._inflight if k[0] == instance_id]:
            retired = self._inflight.pop(key)
            self._agent_load_view[retired.agent] -= 1
            if retired.span is not None:
                self.system.tracer.end(
                    retired.span, self.simulator.now, status="cancelled"
                )
        self.wfdb.set_status(instance_id, InstanceStatus.ABORTED)
        self._release_coordination(runtime, aborted=True)
        self.system._record_outcome(
            instance_id,
            runtime.state.schema_name,
            InstanceStatus.ABORTED,
            {},
            self.simulator.now,
        )
        self.wfdb.archive(instance_id)
        self.trace.record(self.simulator.now, self.name, "workflow.aborted",
                          instance=instance_id)

    def workflow_change_inputs(
        self, instance_id: str, changes: Mapping[str, Any]
    ) -> None:
        """WorkflowChangeInputs WI: partial rollback to the earliest step
        consuming a changed input, then OCR re-execution."""
        status = self.wfdb.status(instance_id)
        if status is not InstanceStatus.RUNNING:
            self.trace.record(self.simulator.now, self.name,
                              "change_inputs.rejected",
                              instance=instance_id, reason=status.value)
            return
        runtime = self.runtime(instance_id)
        self._charge(Mechanism.INPUT_CHANGE)
        changed_refs = {f"WF.{name}" for name in changes}
        origin = None
        for step in runtime.compiled.graph.topo_order:
            step_def = runtime.compiled.schema.steps[step]
            if not changed_refs.intersection(step_def.inputs):
                continue
            if runtime.state.step_status(step) in (StepStatus.DONE, StepStatus.RUNNING):
                origin = step
                break
        runtime.state.apply_input_changes(changes)
        self.trace.record(self.simulator.now, self.name, "workflow.change_inputs",
                          instance=instance_id, origin=origin or "-")
        if origin is not None:
            self._rollback(instance_id, origin, Mechanism.INPUT_CHANGE)

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        # Status reads are summary-table lookups; the paper charges no
        # navigation load for them.
        return self.wfdb.status(instance_id)

    # ------------------------------------------------------------ rule actions

    def _on_rule(self, instance_id: str, rule: RuleInstance) -> None:
        if rule.kind == "execute":
            self._begin_step(instance_id, rule.step, rule)
        elif rule.kind == "loop":
            self._fire_loop(instance_id, rule)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"engine cannot run rule kind {rule.kind!r}")

    def _step_mechanism(self, runtime: _Runtime, step: str) -> Mechanism:
        record = runtime.state.steps.get(step)
        if record is not None and (record.executions > 0 or record.compensations > 0):
            return runtime.recovery_mechanism
        return Mechanism.NORMAL

    def _begin_step(
        self, instance_id: str, step: str, rule: RuleInstance | None = None
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        mechanism = self._step_mechanism(runtime, step)
        self._charge(mechanism)
        if runtime.governed:
            self._charge(Mechanism.COORDINATION, runtime.governed)

        # CompensateThread: entering a different if-then-else branch than the
        # previous execution pass compensates the abandoned branch.  Only a
        # rule triggered by the *split's* completion is a branch entry — a
        # step can simultaneously be a branch head and the confluence of the
        # other branches (it then also has rules fed by those branches).
        split = compiled.branch_first_map.get(step)
        entered_via_split = (
            split is not None
            and (rule is None or step_done(split) in rule.required)
        )
        if split is not None and entered_via_split:
            abandoned = abandoned_branch_compensation(
                compiled, runtime.state, split, step
            )
            if abandoned:
                self.trace.record(self.simulator.now, self.name, "compensate.thread",
                                  instance=instance_id, split=split,
                                  steps=",".join(abandoned))
                self._compensate_chain(
                    runtime, abandoned, runtime.recovery_mechanism,
                    on_done=lambda: None,
                )

        record = runtime.state.record(step)
        new_inputs = runtime.state.gather_inputs(step_def.inputs)
        policy = compiled.schema.cr_policies.get(step)
        if policy is None:
            from repro.model.policies import DEFAULT_POLICY as policy  # type: ignore[no-redef]
        plan = plan_step_action(step_def, record, new_inputs, policy)
        if plan.decision is not None:
            self.system.obs_ocr_planned(
                instance_id, self.name, self.simulator.now, plan
            )

        if plan.reuse_outputs:
            record.reuses += 0  # updated inside record_reuse
            token = record_reuse(runtime.state, step_def, self.simulator.now)
            self.trace.record(self.simulator.now, self.name, "step.reuse",
                              instance=instance_id, step=step)
            self.system.obs_step_done(instance_id, step, self.simulator.now)
            self.wfdb.persist(runtime.state)
            runtime.engine.post_event(token, self.simulator.now)
            self._after_step_done(instance_id, step)
            return

        def proceed() -> None:
            self._launch_execution(
                instance_id, step, plan.execution_cost, mechanism, new_inputs
            )

        if plan.compensate:
            members = compiled.schema.compensation_set_of(step)
            if members is not None:
                # Only members whose done event is *invalid* (their effects
                # belong to the rolled back pass) join the chain; ordering
                # uses their pre-rollback completion times.
                stale_times: dict[str, float] = {}
                for member in members:
                    occurrence = runtime.engine.events.occurrence(step_done(member))
                    record_m = runtime.state.steps.get(member)
                    if (
                        occurrence is not None
                        and not occurrence.valid
                        and record_m is not None
                        and record_m.status is StepStatus.DONE
                    ):
                        stale_times[member] = occurrence.time
                ordered = stale_compensation_chain(members, stale_times, step)
            else:
                ordered = [step]
            self.trace.record(self.simulator.now, self.name, "ocr.compensate",
                              instance=instance_id, step=step,
                              comp=plan.compensation_kind or "-",
                              chain=",".join(ordered))
            partial = {step} if plan.compensation_kind == "partial" else None
            self._compensate_chain(runtime, ordered, mechanism, on_done=proceed,
                                   partial_for=partial)
        else:
            proceed()

    def _launch_execution(
        self,
        instance_id: str,
        step: str,
        cost: float,
        mechanism: Mechanism,
        inputs: dict[str, Any],
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        step_def = runtime.compiled.schema.steps[step]
        if step_def.subworkflow is not None:
            self._launch_nested(runtime, instance_id, step, inputs)
            return
        record = runtime.state.record(step)
        record.status = StepStatus.RUNNING
        attempt = record.executions + 1
        eligible = self.system.assignment.eligible(runtime.state.schema_name, step)
        if len(eligible) > 1 and self.config.dispatch_probes:
            probe_id = next(self._ids)
            wait = _ProbeWait(
                instance_id=instance_id,
                step=step,
                waiting=set(eligible[1:]),
                loads={eligible[0]: self._agent_load_view[eligible[0]]},
                cost=cost,
                mechanism=mechanism,
                inputs=inputs,
                attempt=attempt,
            )
            self._probes[probe_id] = wait
            for agent in eligible[1:]:
                self.send(
                    agent,
                    "StateInformation",
                    {"probe_id": probe_id, "mechanism": mechanism.value},
                    mechanism,
                )
        else:
            self._send_execute(instance_id, step, eligible[0], cost, mechanism,
                               inputs, attempt)

    def _on_state_info_reply(self, message: Message) -> None:
        probe_id = message.payload["probe_id"]
        wait = self._probes.get(probe_id)
        if wait is None:
            return
        wait.waiting.discard(message.src)
        wait.loads[message.src] = message.payload["load"]
        if wait.waiting:
            return
        del self._probes[probe_id]
        agent = min(wait.loads, key=lambda a: (wait.loads[a], a))
        self._send_execute(
            wait.instance_id, wait.step, agent, wait.cost, wait.mechanism,
            wait.inputs, wait.attempt,
        )

    def _send_execute(
        self,
        instance_id: str,
        step: str,
        agent: str,
        cost: float,
        mechanism: Mechanism,
        inputs: dict[str, Any],
        attempt: int,
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        record = runtime.state.record(step)
        record.agent = agent
        self._inflight[(instance_id, step)] = _Inflight(
            epoch=runtime.state.recovery_epoch,
            inputs=inputs,
            attempt=attempt,
            mechanism=mechanism,
            agent=agent,
            span=self.system.obs_step_dispatched(
                instance_id, step, self.name, self.simulator.now,
                agent=agent, attempt=attempt, mechanism=mechanism.value,
            ),
        )
        self._agent_load_view[agent] += 1
        self.trace.record(self.simulator.now, self.name, "step.dispatch",
                          instance=instance_id, step=step, agent=agent)
        self.send(
            agent,
            "StepExecute",
            {
                "instance_id": instance_id,
                "schema_name": runtime.state.schema_name,
                "step": step,
                "inputs": inputs,
                "attempt": attempt,
                "cost": cost,
                "epoch": runtime.state.recovery_epoch,
                "mechanism": mechanism.value,
            },
            mechanism,
        )

    def _on_step_result(self, message: Message) -> None:
        payload = message.payload
        instance_id, step = payload["instance_id"], payload["step"]
        key = (instance_id, step)
        inflight = self._inflight.get(key)
        runtime = self.runtimes.get(instance_id)
        current = (
            inflight is not None
            and inflight.epoch == payload["epoch"]
            and runtime is not None
            and payload["epoch"] == runtime.state.recovery_epoch
        )
        if not current:
            # Stale result from before a rollback/abort: discard.  The
            # rollback already retired the matching in-flight record and
            # reset the step status, so nothing else to do here.
            self.trace.record(self.simulator.now, self.name, "step.stale_result",
                              instance=instance_id, step=step)
            return
        del self._inflight[key]
        self._agent_load_view[inflight.agent] -= 1
        state = runtime.state
        step_def = runtime.compiled.schema.steps[step]
        if payload["success"]:
            token = record_execution_success(
                state, step_def, inflight.inputs, payload["outputs"],
                self.simulator.now, inflight.agent,
            )
            self.trace.record(self.simulator.now, self.name, "step.done",
                              instance=instance_id, step=step)
            self.system.obs_step_finished(
                inflight.span, self.simulator.now, status="done"
            )
            self.system.obs_step_done(instance_id, step, self.simulator.now)
            self.wfdb.persist(state)
            runtime.engine.post_event(token, self.simulator.now)
            self._after_step_done(instance_id, step)
        else:
            token = record_execution_failure(
                state, step_def, inflight.inputs, self.simulator.now, inflight.agent
            )
            self.trace.record(self.simulator.now, self.name, "step.fail",
                              instance=instance_id, step=step,
                              error=payload.get("error") or "-")
            self.system.obs_step_finished(
                inflight.span, self.simulator.now, status="failed",
                error=payload.get("error") or "-",
            )
            self.wfdb.persist(state)
            runtime.engine.post_event(token, self.simulator.now)
            self._handle_failure(instance_id, step)

    # ------------------------------------------------------------ nested workflows

    def _launch_nested(
        self, runtime: _Runtime, instance_id: str, step: str, inputs: dict[str, Any]
    ) -> None:
        step_def = runtime.compiled.schema.steps[step]
        child_schema = self.system.compiled(step_def.subworkflow)
        record = runtime.state.record(step)
        record.status = StepStatus.RUNNING
        child_values = list(inputs.values())
        child_inputs = dict(zip(child_schema.schema.inputs, child_values))
        child_id = f"{instance_id}.{step}#{record.executions + 1}"
        runtime.nested_children[step] = child_id
        self.trace.record(self.simulator.now, self.name, "nested.start",
                          instance=instance_id, step=step, child=child_id)
        self.workflow_start(
            child_schema.name, child_id, child_inputs,
            parent_link=(instance_id, step),
        )

    def _on_nested_done(
        self, parent_id: str, parent_step: str, child_outputs: Mapping[str, Any]
    ) -> None:
        runtime = self.runtimes.get(parent_id)
        if runtime is None:
            return
        step_def = runtime.compiled.schema.steps[parent_step]
        missing = [o for o in step_def.outputs if o not in child_outputs]
        if missing:
            raise SchemaError(
                f"nested workflow for {parent_id}.{parent_step} did not produce "
                f"outputs {missing}"
            )
        record = runtime.state.record(parent_step)
        inputs = record.last_inputs or runtime.state.gather_inputs(step_def.inputs)
        outputs = {o: child_outputs[o] for o in step_def.outputs}
        token = record_execution_success(
            runtime.state, step_def, inputs, outputs, self.simulator.now, self.name
        )
        self.system.obs_step_done(parent_id, parent_step, self.simulator.now)
        self.wfdb.persist(runtime.state)
        runtime.engine.post_event(token, self.simulator.now)
        self._after_step_done(parent_id, parent_step)

    # ------------------------------------------------------------ after-done hooks

    def _loop_continues(self, runtime: _Runtime, step: str) -> bool:
        for template in runtime.compiled.loop_templates_for(step):
            condition = runtime.compiled.condition_for(template.rule_id)
            if condition is None:
                return True
            try:
                if condition.evaluate(runtime.state.env()):
                    return True
            except Exception:
                continue
        return False

    def _after_step_done(self, instance_id: str, step: str) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        self._coord_on_step_done(runtime, step)

        # Termination: terminal steps report unless a loop continues.
        if step in compiled.terminal_steps and not self._loop_continues(runtime, step):
            runtime.reported.add(step)
            if compiled.commit_ready(runtime.reported):
                self._commit(instance_id)

    def _deliver_grant(self, instance_id: str, token: str) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        runtime.engine.add_event(token, self.simulator.now)

    # ------------------------------------------------------------ coordination

    def _coord_on_step_done(self, runtime: "_Runtime", step: str) -> None:
        """Coordination side effects of a step completion.

        Centralized control handles everything locally (zero messages);
        parallel control overrides this with engine-to-engine broadcasts.
        """
        schema_name = runtime.state.schema_name
        instance_id = runtime.state.instance_id
        # Relative ordering: report the completion; a first-pair completion
        # also registers the instance and requests clearance for the
        # remaining pairs.
        for spec, pair_index in self.spec_index.ro_roles(schema_name, step):
            authority = self.authorities.ro[spec.name]
            key = SpecIndex.conflict_key_value(spec, runtime.state)
            self.system.obs_coordination(
                instance_id, self.name, self.simulator.now, "ro.report",
                spec_name=spec.name, step=step, pair=pair_index,
            )
            grants = authority.report_completion(schema_name, instance_id, pair_index, key)
            if pair_index == 0:
                n_pairs = len(spec.steps_a)
                for later in range(1, n_pairs):
                    grant = authority.request_clearance(
                        schema_name, instance_id, later, key
                    )
                    if grant is not None:
                        grants.append(grant)
            for grant in grants:
                self._deliver_grant(grant.instance, grant.token)

        # Mutual exclusion: release at the region's last step; acquire for
        # successor steps that open a region.
        for spec in self.spec_index.mx_region_last(schema_name, step):
            self._mx_release(runtime, spec)
        for successor in runtime.compiled.graph.successors(step):
            for spec in self.spec_index.mx_region_first(schema_name, successor):
                self._mx_acquire(runtime, spec)

        # Rollback dependency: register target-step completion.
        for spec in self.spec_index.rd_targets(schema_name, step):
            authority = self.authorities.rd[spec.name]
            self.system.obs_coordination(
                instance_id, self.name, self.simulator.now, "rd.report",
                spec_name=spec.name, step=step,
            )
            authority.report_target_executed(
                instance_id, SpecIndex.conflict_key_value(spec, runtime.state)
            )

    def _mx_acquire(self, runtime: _Runtime, spec: CoordinationSpec) -> None:
        current = runtime.mx_state.get(spec.name, "none")
        if current in ("requested", "held"):
            return
        authority = self.authorities.mx[spec.name]
        key = SpecIndex.conflict_key_value(spec, runtime.state)
        instance_id = runtime.state.instance_id
        granted = authority.acquire(runtime.state.schema_name, instance_id, key)
        self.system.obs_coordination(
            instance_id, self.name, self.simulator.now, "mx.acquire",
            spec_name=spec.name, granted=granted,
        )
        if granted:
            runtime.mx_state[spec.name] = "held"
            self._deliver_grant(instance_id, mx_clearance_token(spec.name, instance_id))
        else:
            runtime.mx_state[spec.name] = "requested"

    def _mx_release(self, runtime: _Runtime, spec: CoordinationSpec) -> None:
        if runtime.mx_state.get(spec.name) not in ("held", "requested"):
            return
        authority = self.authorities.mx[spec.name]
        key = SpecIndex.conflict_key_value(spec, runtime.state)
        runtime.mx_state[spec.name] = "released"
        self.system.obs_coordination(
            runtime.state.instance_id, self.name, self.simulator.now,
            "mx.release", spec_name=spec.name,
        )
        grantee = authority.release(
            runtime.state.schema_name, runtime.state.instance_id, key
        )
        if grantee is not None:
            __, next_instance = grantee
            next_runtime = self.runtimes.get(next_instance)
            if next_runtime is not None:
                next_runtime.mx_state[spec.name] = "held"
                self._deliver_grant(
                    next_instance, mx_clearance_token(spec.name, next_instance)
                )

    def _release_coordination(self, runtime: _Runtime, aborted: bool) -> None:
        """On commit/abort: free MX locks, withdraw RD (and RO if aborted)."""
        schema_name = runtime.state.schema_name
        instance_id = runtime.state.instance_id
        for spec in self.spec_index.mx_specs(schema_name):
            self._mx_release(runtime, spec)
        for authority in self.authorities.rd.values():
            authority.withdraw(instance_id)
        if aborted:
            for authority in self.authorities.ro.values():
                for grant in authority.withdraw(instance_id):
                    self._deliver_grant(grant.instance, grant.token)

    # ------------------------------------------------------------ failure handling

    def _handle_failure(self, instance_id: str, failed_step: str) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        origin = runtime.compiled.schema.rollback_origin(failed_step)
        if origin is None:
            # No rollback point: Saga-style default — compensate everything
            # executed (reverse order) and abort the workflow.
            self.trace.record(self.simulator.now, self.name, "failure.unhandled",
                              instance=instance_id, step=failed_step)
            runtime.state.recovery_epoch += 1
            self.system.obs_recovery_started(
                instance_id, self.name, self.simulator.now, origin=None,
                epoch=runtime.state.recovery_epoch, mechanism="failure",
            )
            executed = [
                s
                for s in reversed(runtime.state.executed_steps_in_order())
                if runtime.compiled.schema.steps[s].compensable
            ]
            self._compensate_chain(
                runtime, executed, Mechanism.FAILURE,
                on_done=lambda: self._finish_abort(instance_id),
            )
            return
        self._rollback(instance_id, origin, Mechanism.FAILURE)

    def _rollback(
        self,
        instance_id: str,
        origin: str,
        mechanism: Mechanism,
        from_rd: bool = False,
    ) -> None:
        """Partial rollback to ``origin`` followed by OCR re-execution."""
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        state = runtime.state
        compiled = runtime.compiled
        state.recovery_epoch += 1
        runtime.recovery_mechanism = mechanism
        recovery = RecoveryTokens(compiled, origin)
        self.trace.record(self.simulator.now, self.name, "rollback",
                          instance=instance_id, origin=origin,
                          epoch=state.recovery_epoch)
        self.system.obs_recovery_started(
            instance_id, self.name, self.simulator.now, origin=origin,
            epoch=state.recovery_epoch, mechanism=mechanism.value,
        )
        # Halting threads is local work in centralized control; one unit of
        # navigation load per affected step.
        self._charge(mechanism, len(recovery.steps))
        runtime.engine.invalidate_events(recovery.tokens)
        runtime.engine.reset_rules_for_steps(recovery.steps)
        for step in recovery.steps:
            record = state.steps.get(step)
            if record is not None and record.status is StepStatus.RUNNING:
                record.status = StepStatus.NOT_STARTED
            retired = self._inflight.pop((instance_id, step), None)
            if retired is not None:
                self._agent_load_view[retired.agent] -= 1
                if retired.span is not None:
                    self.system.tracer.end(
                        retired.span, self.simulator.now, status="cancelled"
                    )
        runtime.reported -= recovery.steps
        self.wfdb.persist(state)

        # Rollback dependency triggers (single-hop to avoid ping-pong).
        if not from_rd:
            self._coord_on_rollback(runtime, recovery.steps)

        runtime.engine.reevaluate()

    def _coord_on_rollback(self, runtime: "_Runtime", inval_steps) -> None:
        """Rollback-dependency propagation (local in centralized control)."""
        state = runtime.state
        instance_id = state.instance_id
        for spec in self.spec_index.rd_triggers(state.schema_name):
            if spec.trigger_step_a not in inval_steps:
                continue
            authority = self.authorities.rd.get(spec.name)
            if authority is None:
                continue
            self._charge(Mechanism.COORDINATION)
            key = SpecIndex.conflict_key_value(spec, state)
            for dependent in authority.dependents_of(instance_id, key):
                self.trace.record(self.simulator.now, self.name,
                                  "rollback.dependency",
                                  trigger=instance_id, dependent=dependent,
                                  spec=spec.name)
                self.system.obs_coordination(
                    instance_id, self.name, self.simulator.now,
                    "rd.propagate", spec_name=spec.name, dependent=dependent,
                )
                self._rollback(
                    dependent, spec.rollback_to_b, Mechanism.FAILURE, from_rd=True
                )

    def _fire_loop(self, instance_id: str, rule: RuleInstance) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        runtime.loop_fires[rule.rule_id] += 1
        if runtime.loop_fires[rule.rule_id] > self.config.max_loop_iterations:
            raise SimulationError(
                f"loop {rule.rule_id} exceeded {self.config.max_loop_iterations} "
                f"iterations in instance {instance_id}"
            )
        body = rule.loop_body
        self.trace.record(self.simulator.now, self.name, "loop.iterate",
                          instance=instance_id, rule=rule.rule_id,
                          iteration=runtime.loop_fires[rule.rule_id])
        from repro.core.recovery import invalidation_tokens

        runtime.engine.invalidate_events(invalidation_tokens(body))
        runtime.engine.reset_rules_for_steps(body)
        for step in body:
            record = runtime.state.steps.get(step)
            if record is not None:
                record.status = StepStatus.NOT_STARTED
        runtime.reported -= set(body)
        runtime.engine.reevaluate()

    # ------------------------------------------------------------ compensation

    def _compensate_chain(
        self,
        runtime: _Runtime,
        steps: list[str],
        mechanism: Mechanism,
        on_done,
        partial_for: set[str] | None = None,
    ) -> None:
        """Compensate ``steps`` strictly in order via agent round-trips.

        Each step is marked COMPENSATED in the authoritative state as its
        request is issued; the ack drives the chain forward, preserving the
        reverse-execution-order requirement of compensation dependent sets.
        """
        if not steps:
            on_done()
            return
        chain_id = next(self._ids)
        self._chains[chain_id] = _CompChain(
            instance_id=runtime.state.instance_id,
            steps=list(steps),
            mechanism=mechanism,
            on_done=on_done,
        )
        self._advance_chain(chain_id, partial_for or set())

    def _advance_chain(self, chain_id: int, partial_for: set[str] | None = None) -> None:
        chain = self._chains.get(chain_id)
        if chain is None:
            return
        if not chain.steps:
            del self._chains[chain_id]
            chain.on_done()
            return
        runtime = self.runtimes.get(chain.instance_id)
        if runtime is None:
            del self._chains[chain_id]
            return
        step = chain.steps.pop(0)
        record = runtime.state.steps.get(step)
        step_def = runtime.compiled.schema.steps[step]
        if record is None or record.status is not StepStatus.DONE:
            self._advance_chain(chain_id, partial_for)
            return
        kind = "partial" if partial_for and step in partial_for else "complete"
        cost = step_def.effective_compensation_cost
        if kind == "partial":
            policy = runtime.compiled.schema.cr_policies.get(step)
            fraction = policy.incremental_fraction if policy is not None else 0.3
            cost *= fraction
        token = record_compensation(runtime.state, step_def, kind)
        runtime.engine.post_event(token, self.simulator.now)
        self._charge(chain.mechanism)
        agent = record.agent or self.system.assignment.eligible(
            runtime.state.schema_name, step
        )[0]
        self.trace.record(self.simulator.now, self.name, "step.compensate",
                          instance=chain.instance_id, step=step, comp=kind,
                          agent=agent)
        self.send(
            agent,
            "StepCompensate",
            {
                "instance_id": chain.instance_id,
                "schema_name": runtime.state.schema_name,
                "step": step,
                "kind": kind,
                "cost": cost,
                "chain_id": chain_id,
                "mechanism": chain.mechanism.value,
            },
            chain.mechanism,
        )

    def _on_compensate_ack(self, message: Message) -> None:
        self._advance_chain(message.payload["chain_id"])

    # ------------------------------------------------------------ commit

    def _commit(self, instance_id: str) -> None:
        runtime = self.runtimes.pop(instance_id, None)
        if runtime is None:
            return
        self.wfdb.set_status(instance_id, InstanceStatus.COMMITTED)
        outputs = ControlSystem.workflow_outputs(runtime.compiled, runtime.state)
        self._release_coordination(runtime, aborted=False)
        self.system._record_outcome(
            instance_id,
            runtime.state.schema_name,
            InstanceStatus.COMMITTED,
            outputs,
            self.simulator.now,
        )
        self.trace.record(self.simulator.now, self.name, "workflow.commit",
                          instance=instance_id)
        if runtime.parent_link is not None:
            parent_id, parent_step = runtime.parent_link
            self._on_nested_done(parent_id, parent_step, outputs)
        self.wfdb.archive(instance_id)

    # ------------------------------------------------------------ messaging

    def handle_message(self, message: Message) -> None:
        handler = {
            VERB_STEP_RESULT: self._on_step_result,
            VERB_COMPENSATE_ACK: self._on_compensate_ack,
            VERB_STATE_INFO_REPLY: self._on_state_info_reply,
        }.get(message.interface)
        if handler is None:
            raise SimulationError(
                f"engine {self.name} cannot handle {message.interface!r}"
            )
        handler(message)

    def on_crash(self) -> None:
        """Engine crash loses volatile rule engines; WFDB WAL survives."""
        self.runtimes.clear()
        self._inflight.clear()
        self._probes.clear()
        self._chains.clear()

    def on_recover(self) -> None:
        """Forward recovery: rebuild instance tables from the WAL.

        Rule-engine state is reconstructed from the recovered event history
        recorded in step records; in-flight executions at crash time are
        re-dispatched by re-firing their rules.
        """
        restored = self.wfdb.recover()
        for state in list(self.wfdb.instances()):
            if state.status is not InstanceStatus.RUNNING:
                continue
            compiled = self.system.compiled(state.schema_name)
            engine = RuleEngine(
                compiled,
                action=lambda rule, iid=state.instance_id: self._on_rule(iid, rule),
                env_provider=state.env,
                fire_hook=self.system.rule_fire_hook(self.name, state.instance_id),
            )
            runtime = _Runtime(
                state=state,
                compiled=compiled,
                engine=engine,
                governed=governed_step_count(
                    compiled, self.spec_index.specs_for(state.schema_name)
                ),
            )
            self.runtimes[state.instance_id] = runtime
            self._install_preconditions(runtime)
            # Replay history into the event table without re-running actions:
            # mark done steps' rules as fired by posting their events after
            # pre-marking records.  RUNNING steps (in flight at crash) are
            # reset so their rules re-fire and re-dispatch.
            for record in state.steps.values():
                if record.status is StepStatus.RUNNING:
                    record.status = StepStatus.NOT_STARTED
            engine.post_event(WF_START, self.simulator.now)
        self.trace.record(self.simulator.now, self.name, "engine.recovered",
                          instances=restored)

    def _install_preconditions(self, runtime: _Runtime) -> None:
        schema_name = runtime.state.schema_name
        instance_id = runtime.state.instance_id
        for spec, pair_index, step in self.spec_index.ro_governed_pairs(schema_name):
            if pair_index >= 1:
                runtime.engine.add_step_precondition(
                    step, ro_clearance_token(spec.name, pair_index, instance_id)
                )
        for spec in self.spec_index.mx_specs(schema_name):
            first, __ = spec.region_of(schema_name)
            runtime.engine.add_step_precondition(
                first, mx_clearance_token(spec.name, instance_id)
            )


class CentralizedControlSystem(ControlSystem):
    """Public facade for centralized workflow control."""

    architecture = "centralized"

    def __init__(
        self,
        config: SystemConfig | None = None,
        num_agents: int = 4,
        agents_per_step: int = 1,
    ):
        super().__init__(config)
        self.agents_per_step = agents_per_step
        self.engine = CentralEngineNode("engine", self)
        self.agents = [
            ApplicationAgentNode(f"agent-{i:03d}", self) for i in range(num_agents)
        ]

    # -- wiring ------------------------------------------------------------------

    def agent_names(self) -> list[str]:
        return [agent.name for agent in self.agents]

    def _on_schema_registered(self, compiled: CompiledSchema) -> None:
        self.assignment.assign_round_robin(
            compiled, self.agent_names(), self.agents_per_step
        )
        self.engine.wfdb.register_class(compiled)

    def _on_spec_added(self, spec: CoordinationSpec) -> None:
        self.engine.spec_index.add(spec)
        self.engine.authorities.host(spec)

    # -- front-end database operations ----------------------------------------------

    def start_workflow(
        self, schema_name: str, inputs: Mapping[str, Any], delay: float = 0.0
    ) -> str:
        self.compiled(schema_name)  # validate registration eagerly
        instance_id = self.new_instance_id(schema_name)
        self.simulator.schedule(
            delay, self.engine.workflow_start, schema_name, instance_id, dict(inputs)
        )
        return instance_id

    def abort_workflow(self, instance_id: str, delay: float = 0.0) -> None:
        self.simulator.schedule(delay, self.engine.workflow_abort, instance_id)

    def change_inputs(
        self, instance_id: str, changes: Mapping[str, Any], delay: float = 0.0
    ) -> None:
        self.simulator.schedule(
            delay, self.engine.workflow_change_inputs, instance_id, dict(changes)
        )

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        return self.engine.workflow_status(instance_id)

    def engine_nodes(self) -> list[str]:
        return [self.engine.name]
