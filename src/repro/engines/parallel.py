"""Parallel workflow control: several central engines sharing the load.

"A parallel workflow control architecture is an extension of the
centralized architecture where several central engines work in parallel to
share the load of workflow scheduling. ... Each workflow instance however
is controlled by only one workflow engine."  (paper, Sections 4 and 6)

Normal execution, failure handling, aborts and input changes are exactly
the centralized mechanisms, run by the instance's *owner* engine against
the shared agent pool — which is why Table 5's message rows equal Table 4
and its load rows are the centralized loads divided by ``e``.

Coordinated execution is where parallel control pays: conflicting
instances may live on different engines, so every governed-step event
(completions, lock requests/releases, rollback-dependency triggers) is
**broadcast to all engines** and each engine maintains a replica of the
coordination state, granting clearances to the instances it owns.  That
is the paper's ``(me+ro+rd)·e·s`` message term.  Replica convergence is
timestamp-based: all ordering decisions use the originating simulation
time with the instance id as tie-breaker, and mutual-exclusion grants are
deferred by two network latencies so that any earlier-stamped in-flight
request is accounted for before a grant is issued (Lamport-style mutual
exclusion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

from repro.core.coordination import (
    RelativeOrderAuthority,
    RollbackDependencyAuthority,
    mx_clearance_token,
)
from repro.engines.base import ControlSystem, SystemConfig
from repro.engines.centralized import ApplicationAgentNode, CentralEngineNode
from repro.engines.coord import SpecIndex
from repro.engines.runtime import EngineRuntime
from repro.errors import FrontEndError, SchemaError
from repro.model.compiler import CompiledSchema
from repro.model.coordination_spec import CoordinationSpec
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message
from repro.storage.tables import InstanceStatus

__all__ = ["ParallelControlSystem", "ParallelEngineNode", "TimestampMutex"]

VERB_COORD_OP = "AddEvent"  # engine-to-engine coordination broadcast verb


class TimestampMutex:
    """Replicated timestamp-ordered lock (Lamport mutual exclusion).

    Every engine applies the same request/release broadcasts; the holder is
    the earliest-stamped unreleased requester, so all replicas agree
    without a central lock manager.
    """

    def __init__(self) -> None:
        self._requests: list[tuple[Any, str, str]] = []  # (stamp, schema, inst)
        self._released: set[str] = set()

    def request(self, stamp: Any, schema: str, instance: str) -> None:
        if instance in self._released:
            # Re-acquisition (e.g. a region re-executed after rollback):
            # retire the old request so the new stamp takes effect.
            self._requests = [e for e in self._requests if e[2] != instance]
            self._released.discard(instance)
        if not any(inst == instance for __, __s, inst in self._requests):
            self._requests.append((stamp, schema, instance))
            self._requests.sort(key=lambda e: (e[0], e[2]))

    def release(self, instance: str) -> None:
        self._released.add(instance)

    def holder(self) -> tuple[str, str] | None:
        for __, schema, instance in self._requests:
            if instance not in self._released:
                return (schema, instance)
        return None

    def waiting(self) -> int:
        return sum(1 for __, __s, i in self._requests if i not in self._released)


@dataclass
class _CoordReplica:
    """Per-engine replica of the global coordination state."""

    ro: dict[str, RelativeOrderAuthority] = field(default_factory=dict)
    mx: dict[tuple[str, Hashable], TimestampMutex] = field(default_factory=dict)
    rd: dict[str, RollbackDependencyAuthority] = field(default_factory=dict)

    def mutex(self, spec_name: str, key: Hashable | None) -> TimestampMutex:
        lock_key = (spec_name, key if key is not None else "__ANY__")
        mutex = self.mx.get(lock_key)
        if mutex is None:
            mutex = TimestampMutex()
            self.mx[lock_key] = mutex
        return mutex


class ParallelEngineNode(CentralEngineNode):
    """A central engine participating in a parallel deployment."""

    def __init__(self, name: str, system: "ParallelControlSystem"):
        super().__init__(name, system)
        self.replica = _CoordReplica()
        self._mx_granted: set[tuple[str, str]] = set()  # (spec, instance)

    # -- plumbing ---------------------------------------------------------------

    def _peers(self) -> list[str]:
        return [n for n in self.system.engine_nodes() if n != self.name]

    def _owns(self, instance_id: str) -> bool:
        return self.system.owner_of(instance_id) == self.name

    def _broadcast(self, payload: dict[str, Any]) -> None:
        """Send a coordination op to every peer engine and apply locally."""
        peers = self._peers()
        for peer in peers:
            self.send(peer, VERB_COORD_OP, payload, Mechanism.COORDINATION)
        self.system.obs_coordination(
            payload.get("instance"), self.name, self.simulator.now,
            f"broadcast.{payload['op']}", spec_name=payload.get("spec"),
            peers=len(peers),
        )
        self._apply_coord_op(payload)

    def handle_message(self, message: Message) -> None:
        if message.interface == VERB_COORD_OP:
            self._charge(Mechanism.COORDINATION)
            self._apply_coord_op(dict(message.payload))
            return
        super().handle_message(message)

    # -- overridden coordination hooks ---------------------------------------------

    def _coord_on_step_done(self, runtime: EngineRuntime, step: str) -> None:
        schema_name = runtime.state.schema_name
        instance_id = runtime.state.instance_id
        now = self.simulator.now
        for spec, pair_index in self.spec_index.ro_roles(schema_name, step):
            key = SpecIndex.conflict_key_value(spec, runtime.state)
            self._broadcast({
                "op": "ro_report",
                "spec": spec.name,
                "schema": schema_name,
                "instance": instance_id,
                "pair_index": pair_index,
                "key": key,
                "time": now,
            })
        for spec in self.spec_index.mx_region_last(schema_name, step):
            self._mx_release(runtime, spec)
        for successor in runtime.compiled.graph.successors(step):
            for spec in self.spec_index.mx_region_first(schema_name, successor):
                self._mx_acquire(runtime, spec)
        for spec in self.spec_index.rd_targets(schema_name, step):
            key = SpecIndex.conflict_key_value(spec, runtime.state)
            self._broadcast({
                "op": "rd_report",
                "spec": spec.name,
                "instance": instance_id,
                "key": key,
            })

    def _coord_on_recover(self, runtime: EngineRuntime) -> None:
        # Tokens recorded as delivered died with the volatile event table;
        # forget them so the holder check re-delivers after re-acquisition.
        instance_id = runtime.state.instance_id
        for spec in self.spec_index.mx_specs(runtime.state.schema_name):
            self._mx_granted.discard((spec.name, instance_id))
        super()._coord_on_recover(runtime)

    def _mx_acquire(self, runtime: EngineRuntime, spec: CoordinationSpec) -> None:
        current = runtime.mx_state.get(spec.name, "none")
        if current in ("requested", "held"):
            return
        runtime.mx_state[spec.name] = "requested"
        key = SpecIndex.conflict_key_value(spec, runtime.state)
        self._broadcast({
            "op": "mx_request",
            "spec": spec.name,
            "schema": runtime.state.schema_name,
            "instance": runtime.state.instance_id,
            "key": key,
            "time": self.simulator.now,
        })

    def _mx_release(self, runtime: EngineRuntime, spec: CoordinationSpec) -> None:
        if runtime.mx_state.get(spec.name) not in ("held", "requested"):
            return
        runtime.mx_state[spec.name] = "released"
        key = SpecIndex.conflict_key_value(spec, runtime.state)
        self._broadcast({
            "op": "mx_release",
            "spec": spec.name,
            "instance": runtime.state.instance_id,
            "key": key,
        })

    def _coord_on_rollback(self, runtime: EngineRuntime, inval_steps) -> None:
        state = runtime.state
        for spec in self.spec_index.rd_triggers(state.schema_name):
            if spec.trigger_step_a not in inval_steps:
                continue
            key = SpecIndex.conflict_key_value(spec, state)
            self._broadcast({
                "op": "rd_trigger",
                "spec": spec.name,
                "instance": state.instance_id,
                "key": key,
            })

    def _release_coordination(self, runtime: EngineRuntime, aborted: bool) -> None:
        schema_name = runtime.state.schema_name
        for spec in self.spec_index.mx_specs(schema_name):
            self._mx_release(runtime, spec)
        self._broadcast({
            "op": "withdraw",
            "instance": runtime.state.instance_id,
            "aborted": aborted,
        })

    # -- replica application -----------------------------------------------------------

    def _apply_coord_op(self, payload: Mapping[str, Any]) -> None:
        op = payload["op"]
        if op == "ro_report":
            self._apply_ro_report(payload)
        elif op == "mx_request":
            authority = self.replica.mutex(payload["spec"], payload["key"])
            authority.request(
                (payload["time"], payload["instance"]),
                payload["schema"],
                payload["instance"],
            )
            self._schedule_mx_check(payload["spec"], payload["key"])
        elif op == "mx_release":
            authority = self.replica.mutex(payload["spec"], payload["key"])
            authority.release(payload["instance"])
            self._mx_granted.discard((payload["spec"], payload["instance"]))
            self._schedule_mx_check(payload["spec"], payload["key"])
        elif op == "rd_report":
            replica = self._rd_replica(payload["spec"])
            replica.report_target_executed(payload["instance"], payload["key"])
        elif op == "rd_trigger":
            replica = self._rd_replica(payload["spec"])
            spec = next(s for s in self.spec_index.rd if s.name == payload["spec"])
            for dependent in replica.dependents_of(payload["instance"], payload["key"]):
                if self._owns(dependent) and dependent in self.runtimes:
                    self.trace.record(self.simulator.now, self.name,
                                      "rollback.dependency",
                                      trigger=payload["instance"],
                                      dependent=dependent, spec=spec.name)
                    self._rollback(
                        dependent, spec.rollback_to_b, Mechanism.FAILURE, from_rd=True
                    )
        elif op == "withdraw":
            instance = payload["instance"]
            for replica in self.replica.rd.values():
                replica.withdraw(instance)
            if payload.get("aborted"):
                for authority in self.replica.ro.values():
                    for grant in authority.withdraw(instance):
                        if self._owns(grant.instance):
                            self._deliver_grant(grant.instance, grant.token)
        else:  # pragma: no cover - defensive
            raise FrontEndError(f"unknown coordination op {op!r}")

    def _ro_replica(self, spec_name: str) -> RelativeOrderAuthority:
        replica = self.replica.ro.get(spec_name)
        if replica is None:
            spec = next(s for s in self.spec_index.ro if s.name == spec_name)
            replica = RelativeOrderAuthority(spec)
            self.replica.ro[spec_name] = replica
        return replica

    def _rd_replica(self, spec_name: str) -> RollbackDependencyAuthority:
        replica = self.replica.rd.get(spec_name)
        if replica is None:
            spec = next(s for s in self.spec_index.rd if s.name == spec_name)
            replica = RollbackDependencyAuthority(spec)
            self.replica.rd[spec_name] = replica
        return replica

    def _apply_ro_report(self, payload: Mapping[str, Any]) -> None:
        authority = self._ro_replica(payload["spec"])
        instance = payload["instance"]
        grants = authority.report_completion(
            payload["schema"],
            instance,
            payload["pair_index"],
            payload["key"],
            order_key=(payload["time"], instance),
        )
        # Registration: the owner engine queues clearances for the
        # remaining pairs of its own instance — deferred by two broadcast
        # latencies so an earlier-stamped registration broadcast still in
        # flight settles leadership first.
        if payload["pair_index"] == 0 and self._owns(instance):
            self.schedule_causal(
                2 * self.config.latency + 0.001,
                self._ro_request_clearances,
                payload["spec"], payload["schema"], instance, payload["key"],
            )
        for grant in grants:
            if self._owns(grant.instance):
                self._deliver_grant(grant.instance, grant.token)

    def _ro_request_clearances(self, spec_name, schema_name, instance, key) -> None:
        authority = self._ro_replica(spec_name)
        for later in range(1, len(authority.spec.steps_a)):
            grant = authority.request_clearance(schema_name, instance, later, key)
            if grant is not None and self._owns(grant.instance):
                self._deliver_grant(grant.instance, grant.token)

    # -- replicated mutual exclusion ----------------------------------------------------

    def _schedule_mx_check(self, spec_name: str, key: Hashable | None) -> None:
        # Two latencies: any earlier-stamped request is in flight for at
        # most one broadcast latency; the second covers scheduling skew.
        # Causal scheduling: a check pending across a crash must die with
        # the node, or it releases locks of instances recovery is about to
        # rebuild.
        self.schedule_causal(
            2 * self.config.latency + 0.001, self._mx_check, spec_name, key
        )

    def _mx_check(self, spec_name: str, key: Hashable | None) -> None:
        mutex = self.replica.mutex(spec_name, key)
        holder = mutex.holder()
        if holder is None:
            return
        __, instance = holder
        if not self._owns(instance) or (spec_name, instance) in self._mx_granted:
            return
        runtime = self.runtimes.get(instance)
        if runtime is None:
            # Owner engine no longer runs the instance (finished): release.
            mutex.release(instance)
            return
        self._mx_granted.add((spec_name, instance))
        runtime.mx_state[spec_name] = "held"
        self._deliver_grant(instance, mx_clearance_token(spec_name, instance))


class ParallelControlSystem(ControlSystem):
    """Public facade for parallel workflow control (``e`` engines)."""

    architecture = "parallel"

    def __init__(
        self,
        config: SystemConfig | None = None,
        num_engines: int = 2,
        num_agents: int = 4,
        agents_per_step: int = 1,
        runtime=None,
    ):
        super().__init__(config, runtime=runtime)
        if num_engines < 1:
            raise SchemaError("parallel control needs at least one engine")
        self.agents_per_step = agents_per_step
        self.engines = [
            ParallelEngineNode(f"engine-{i:02d}", self) for i in range(num_engines)
        ]
        self.agents = [
            ApplicationAgentNode(f"agent-{i:03d}", self) for i in range(num_agents)
        ]
        self._owners: dict[str, str] = {}
        self._next_engine = 0

    # -- wiring ---------------------------------------------------------------------

    def agent_names(self) -> list[str]:
        return [agent.name for agent in self.agents]

    def engine_nodes(self) -> list[str]:
        return [engine.name for engine in self.engines]

    def _on_schema_registered(self, compiled: CompiledSchema) -> None:
        self.assignment.assign_round_robin(
            compiled, self.agent_names(), self.agents_per_step
        )
        for engine in self.engines:
            engine.wfdb.register_class(compiled)

    def _on_spec_added(self, spec: CoordinationSpec) -> None:
        for engine in self.engines:
            engine.spec_index.add(spec)

    # -- ownership ---------------------------------------------------------------------

    def owner_of(self, instance_id: str) -> str:
        try:
            return self._owners[instance_id]
        except KeyError:
            raise FrontEndError(f"unknown instance {instance_id!r}") from None

    def _note_owner(self, instance_id: str, engine_name: str) -> None:
        self._owners[instance_id] = engine_name

    def _owner_engine(self, instance_id: str) -> ParallelEngineNode:
        name = self.owner_of(instance_id)
        return next(e for e in self.engines if e.name == name)

    # -- front-end database operations ----------------------------------------------------

    def start_workflow(
        self, schema_name: str, inputs: Mapping[str, Any], delay: float = 0.0
    ) -> str:
        self.compiled(schema_name)
        instance_id = self.new_instance_id(schema_name)
        engine = self.engines[self._next_engine % len(self.engines)]
        self._next_engine += 1
        self._note_owner(instance_id, engine.name)
        self.schedule_frontend(
            delay, engine, engine.workflow_start,
            schema_name, instance_id, dict(inputs),
        )
        return instance_id

    def abort_workflow(self, instance_id: str, delay: float = 0.0) -> None:
        engine = self._owner_engine(instance_id)
        self.schedule_frontend(delay, engine, engine.workflow_abort, instance_id)

    def change_inputs(
        self, instance_id: str, changes: Mapping[str, Any], delay: float = 0.0
    ) -> None:
        engine = self._owner_engine(instance_id)
        self.schedule_frontend(
            delay, engine, engine.workflow_change_inputs,
            instance_id, dict(changes),
        )

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        return self._owner_engine(instance_id).workflow_status(instance_id)
