"""The front-end database: the administrative interface to the WFMS.

"The front end database that provides the administrative interface to
execute/abort workflows interacts only with coordination agents."

The front end maps *external references* (customer order numbers, ticket
ids) to workflow instances, so that "a customer's cancellation order is
translated into a workflow abort using the mapping information stored in
the front end database".  It delegates to whichever control system it
fronts — the four WIs it uses (WorkflowStart / WorkflowAbort /
WorkflowChangeInputs / WorkflowStatus) have identical semantics in all
three architectures.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.engines.base import ControlSystem, InstanceOutcome
from repro.errors import FrontEndError
from repro.storage.tables import InstanceStatus

__all__ = ["FrontEndDatabase"]


class FrontEndDatabase:
    """Administrative facade mapping external references to instances."""

    def __init__(self, system: ControlSystem):
        self.system = system
        self._by_reference: dict[str, str] = {}
        self._by_instance: dict[str, str] = {}

    # -- submissions ----------------------------------------------------------

    def submit(
        self,
        reference: str,
        schema_name: str,
        inputs: Mapping[str, Any],
        delay: float = 0.0,
    ) -> str:
        """Start a workflow for an external request; returns the instance id."""
        if reference in self._by_reference:
            raise FrontEndError(f"reference {reference!r} already submitted")
        instance_id = self.system.start_workflow(schema_name, inputs, delay=delay)
        self._by_reference[reference] = instance_id
        self._by_instance[instance_id] = reference
        return instance_id

    def instance_of(self, reference: str) -> str:
        try:
            return self._by_reference[reference]
        except KeyError:
            raise FrontEndError(f"unknown reference {reference!r}") from None

    def reference_of(self, instance_id: str) -> str | None:
        return self._by_instance.get(instance_id)

    # -- administrative operations ------------------------------------------------

    def cancel(self, reference: str, delay: float = 0.0) -> None:
        """Translate an external cancellation into a WorkflowAbort."""
        self.system.abort_workflow(self.instance_of(reference), delay=delay)

    def amend(
        self, reference: str, changes: Mapping[str, Any], delay: float = 0.0
    ) -> None:
        """Translate an external amendment into a WorkflowChangeInputs."""
        self.system.change_inputs(self.instance_of(reference), changes, delay=delay)

    def status(self, reference: str) -> InstanceStatus:
        """WorkflowStatus via the coordination agent / engine summary."""
        return self.system.workflow_status(self.instance_of(reference))

    def result(self, reference: str) -> InstanceOutcome:
        """Outcome of a finished request (raises if still running)."""
        return self.system.outcome(self.instance_of(reference))

    def references(self) -> list[str]:
        return sorted(self._by_reference)
