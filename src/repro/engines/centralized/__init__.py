"""Centralized workflow control (paper Section 2, Figure 1).

One :class:`CentralEngineNode` owns all workflow state in a WFDB and
performs all navigation; :class:`ApplicationAgentNode` instances only
execute step programs.  Per step execution the engine exchanges
``2·a`` physical messages with the agent pool (``a-1`` StateInformation
probe round-trips to pick the least-loaded eligible agent plus the
StepExecute/StepResult round-trip), matching the paper's Table 4 count
``2·s·a`` per instance.

Failure handling (rollback + OCR re-execution), coordinated execution and
abort/input-change processing all run *inside* the engine — coordinated
execution costs load but zero messages, the paper's headline advantage of
centralized control under heavy coordination requirements.

Package layout:

* :mod:`~repro.engines.centralized.agents` — the "dumb" application agent;
* :mod:`~repro.engines.centralized.engine` — the central engine node;
* :mod:`~repro.engines.centralized.coordination` — engine-local
  coordination authorities (RO/MX/RD);
* :mod:`~repro.engines.centralized.recovery` — rollback, compensation
  chains, abort and input-change processing;
* :mod:`~repro.engines.centralized.system` — the public facade.
"""

from repro.engines.centralized.agents import (
    VERB_COMPENSATE_ACK,
    VERB_STATE_INFO_REPLY,
    VERB_STEP_RESULT,
    ApplicationAgentNode,
)
from repro.engines.centralized.engine import CentralEngineNode
from repro.engines.centralized.system import CentralizedControlSystem

__all__ = [
    "ApplicationAgentNode",
    "CentralEngineNode",
    "CentralizedControlSystem",
    "VERB_COMPENSATE_ACK",
    "VERB_STATE_INFO_REPLY",
    "VERB_STEP_RESULT",
]
