"""Public facade for centralized workflow control."""

from __future__ import annotations

from typing import Any, Mapping

from repro.engines.base import ControlSystem, SystemConfig
from repro.engines.centralized.agents import ApplicationAgentNode
from repro.engines.centralized.engine import CentralEngineNode
from repro.model.compiler import CompiledSchema
from repro.model.coordination_spec import CoordinationSpec
from repro.storage.tables import InstanceStatus

__all__ = ["CentralizedControlSystem"]


class CentralizedControlSystem(ControlSystem):
    """Public facade for centralized workflow control."""

    architecture = "centralized"

    def __init__(
        self,
        config: SystemConfig | None = None,
        num_agents: int = 4,
        agents_per_step: int = 1,
        runtime=None,
    ):
        super().__init__(config, runtime=runtime)
        self.agents_per_step = agents_per_step
        self.engine = CentralEngineNode("engine", self)
        self.agents = [
            ApplicationAgentNode(f"agent-{i:03d}", self) for i in range(num_agents)
        ]

    # -- wiring ------------------------------------------------------------------

    def agent_names(self) -> list[str]:
        return [agent.name for agent in self.agents]

    def _on_schema_registered(self, compiled: CompiledSchema) -> None:
        self.assignment.assign_round_robin(
            compiled, self.agent_names(), self.agents_per_step
        )
        self.engine.wfdb.register_class(compiled)

    def _on_spec_added(self, spec: CoordinationSpec) -> None:
        self.engine.spec_index.add(spec)
        self.engine.authorities.host(spec)

    # -- front-end database operations ----------------------------------------------

    def start_workflow(
        self, schema_name: str, inputs: Mapping[str, Any], delay: float = 0.0
    ) -> str:
        self.compiled(schema_name)  # validate registration eagerly
        instance_id = self.new_instance_id(schema_name)
        self.schedule_frontend(
            delay, self.engine, self.engine.workflow_start,
            schema_name, instance_id, dict(inputs),
        )
        return instance_id

    def abort_workflow(self, instance_id: str, delay: float = 0.0) -> None:
        self.schedule_frontend(
            delay, self.engine, self.engine.workflow_abort, instance_id
        )

    def change_inputs(
        self, instance_id: str, changes: Mapping[str, Any], delay: float = 0.0
    ) -> None:
        self.schedule_frontend(
            delay, self.engine, self.engine.workflow_change_inputs,
            instance_id, dict(changes),
        )

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        return self.engine.workflow_status(instance_id)

    def engine_nodes(self) -> list[str]:
        return [self.engine.name]
