"""Failure handling at the central engine.

Rollback + OCR re-execution, Saga-style unhandled failures, abort and
input-change processing, loop re-entry and the agent-round-trip
compensation chains — all engine-local mechanisms in centralized
control.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.recovery import RecoveryTokens
from repro.engines.base import record_compensation
from repro.engines.runtime import CompensationChain, EngineRuntime
from repro.errors import SimulationError
from repro.obs.profile import profiled
from repro.rules.engine import RuleInstance
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message
from repro.storage.tables import InstanceStatus, StepStatus

__all__ = ["EngineRecoveryMixin"]


class EngineRecoveryMixin:
    """Failure/abort/compensation behavior of :class:`CentralEngineNode`."""

    # ------------------------------------------------------------ abort

    def workflow_abort(self, instance_id: str) -> None:
        """WorkflowAbort WI: reject if committed, else compensate + halt."""
        status = self.wfdb.status(instance_id)
        if status is InstanceStatus.COMMITTED:
            # "any request for aborting the workflow ... after a workflow
            # commit will be rejected."
            self.trace.record(self.simulator.now, self.name, "abort.rejected",
                              instance=instance_id, reason="committed")
            return
        if status is InstanceStatus.ABORTED:
            return
        runtime = self.runtime(instance_id)
        self.trace.record(self.simulator.now, self.name, "workflow.abort.request",
                          instance=instance_id)
        self._charge(Mechanism.ABORT)
        # Halt everything first: bump the epoch so in-flight results are stale.
        runtime.state.recovery_epoch += 1
        self.system.obs_recovery_started(
            instance_id, self.name, self.simulator.now, origin=None,
            epoch=runtime.state.recovery_epoch, mechanism="abort",
        )
        schema = runtime.compiled.schema
        to_compensate = [
            s
            for s in schema.abort_compensation_steps
            if runtime.state.step_status(s) is StepStatus.DONE
        ]
        ordered = sorted(
            to_compensate,
            key=lambda s: runtime.state.steps[s].exec_seq or 0,
            reverse=True,
        )
        self._compensate_chain(
            runtime,
            ordered,
            Mechanism.ABORT,
            on_done=lambda: self._finish_abort(instance_id),
        )

    def _finish_abort(self, instance_id: str) -> None:
        runtime = self.runtimes.pop(instance_id, None)
        if runtime is None:
            return
        for key in [k for k in self._inflight if k[0] == instance_id]:
            retired = self._inflight.pop(key)
            self._agent_load_view[retired.agent] -= 1
            if retired.span is not None:
                self.system.tracer.end(
                    retired.span, self.simulator.now, status="cancelled"
                )
        self.wfdb.set_status(instance_id, InstanceStatus.ABORTED)
        self._release_coordination(runtime, aborted=True)
        self.system._record_outcome(
            instance_id,
            runtime.state.schema_name,
            InstanceStatus.ABORTED,
            {},
            self.simulator.now,
        )
        self.wfdb.archive(instance_id)
        self.trace.record(self.simulator.now, self.name, "workflow.aborted",
                          instance=instance_id)

    # ------------------------------------------------------------ input changes

    def workflow_change_inputs(
        self, instance_id: str, changes: Mapping[str, Any]
    ) -> None:
        """WorkflowChangeInputs WI: partial rollback to the earliest step
        consuming a changed input, then OCR re-execution."""
        status = self.wfdb.status(instance_id)
        if status is not InstanceStatus.RUNNING:
            self.trace.record(self.simulator.now, self.name,
                              "change_inputs.rejected",
                              instance=instance_id, reason=status.value)
            return
        runtime = self.runtime(instance_id)
        self._charge(Mechanism.INPUT_CHANGE)
        changed_refs = {f"WF.{name}" for name in changes}
        origin = None
        for step in runtime.compiled.graph.topo_order:
            step_def = runtime.compiled.schema.steps[step]
            if not changed_refs.intersection(step_def.inputs):
                continue
            if runtime.state.step_status(step) in (StepStatus.DONE, StepStatus.RUNNING):
                origin = step
                break
        runtime.state.apply_input_changes(changes)
        self.trace.record(self.simulator.now, self.name, "workflow.change_inputs",
                          instance=instance_id, origin=origin or "-")
        if origin is not None:
            self._rollback(instance_id, origin, Mechanism.INPUT_CHANGE)

    # ------------------------------------------------------------ failure handling

    @profiled("recovery.ocr")
    def _handle_failure(self, instance_id: str, failed_step: str) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        origin = runtime.compiled.schema.rollback_origin(failed_step)
        if origin is None:
            # No rollback point: Saga-style default — compensate everything
            # executed (reverse order) and abort the workflow.
            self.trace.record(self.simulator.now, self.name, "failure.unhandled",
                              instance=instance_id, step=failed_step)
            runtime.state.recovery_epoch += 1
            self.system.obs_recovery_started(
                instance_id, self.name, self.simulator.now, origin=None,
                epoch=runtime.state.recovery_epoch, mechanism="failure",
            )
            executed = [
                s
                for s in reversed(runtime.state.executed_steps_in_order())
                if runtime.compiled.schema.steps[s].compensable
            ]
            self._compensate_chain(
                runtime, executed, Mechanism.FAILURE,
                on_done=lambda: self._finish_abort(instance_id),
            )
            return
        self._rollback(instance_id, origin, Mechanism.FAILURE)

    @profiled("recovery.rollback")
    def _rollback(
        self,
        instance_id: str,
        origin: str,
        mechanism: Mechanism,
        from_rd: bool = False,
    ) -> None:
        """Partial rollback to ``origin`` followed by OCR re-execution."""
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        state = runtime.state
        compiled = runtime.compiled
        state.recovery_epoch += 1
        runtime.recovery_mechanism = mechanism
        recovery = RecoveryTokens(compiled, origin)
        self.trace.record(self.simulator.now, self.name, "rollback",
                          instance=instance_id, origin=origin,
                          epoch=state.recovery_epoch)
        self.system.obs_recovery_started(
            instance_id, self.name, self.simulator.now, origin=origin,
            epoch=state.recovery_epoch, mechanism=mechanism.value,
        )
        # Halting threads is local work in centralized control; one unit of
        # navigation load per affected step.
        self._charge(mechanism, len(recovery.steps))
        runtime.engine.invalidate_events(recovery.tokens)
        runtime.engine.reset_rules_for_steps(recovery.steps)
        for step in recovery.steps:
            record = state.steps.get(step)
            if record is not None and record.status is StepStatus.RUNNING:
                record.status = StepStatus.NOT_STARTED
            retired = self._inflight.pop((instance_id, step), None)
            if retired is not None:
                self._agent_load_view[retired.agent] -= 1
                if retired.span is not None:
                    self.system.tracer.end(
                        retired.span, self.simulator.now, status="cancelled"
                    )
        runtime.reported -= recovery.steps
        self.wfdb.persist(state)

        # Rollback dependency triggers (single-hop to avoid ping-pong).
        if not from_rd:
            self._coord_on_rollback(runtime, recovery.steps)

        runtime.engine.reevaluate()

    # ------------------------------------------------------------ loops

    def _fire_loop(self, instance_id: str, rule: RuleInstance) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        runtime.loop_fires[rule.rule_id] += 1
        if runtime.loop_fires[rule.rule_id] > self.config.max_loop_iterations:
            raise SimulationError(
                f"loop {rule.rule_id} exceeded {self.config.max_loop_iterations} "
                f"iterations in instance {instance_id}"
            )
        body = rule.loop_body
        self.trace.record(self.simulator.now, self.name, "loop.iterate",
                          instance=instance_id, rule=rule.rule_id,
                          iteration=runtime.loop_fires[rule.rule_id])
        from repro.core.recovery import invalidation_tokens

        runtime.engine.invalidate_events(invalidation_tokens(body))
        runtime.engine.reset_rules_for_steps(body)
        for step in body:
            record = runtime.state.steps.get(step)
            if record is not None:
                record.status = StepStatus.NOT_STARTED
        runtime.reported -= set(body)
        runtime.engine.reevaluate()

    # ------------------------------------------------------------ compensation

    def _compensate_chain(
        self,
        runtime: EngineRuntime,
        steps: list[str],
        mechanism: Mechanism,
        on_done,
        partial_for: set[str] | None = None,
    ) -> None:
        """Compensate ``steps`` strictly in order via agent round-trips.

        Each step is marked COMPENSATED in the authoritative state as its
        request is issued; the ack drives the chain forward, preserving the
        reverse-execution-order requirement of compensation dependent sets.
        """
        if not steps:
            on_done()
            return
        chain_id = next(self._ids)
        self._chains[chain_id] = CompensationChain(
            instance_id=runtime.state.instance_id,
            steps=list(steps),
            mechanism=mechanism,
            on_done=on_done,
        )
        self._advance_chain(chain_id, partial_for or set())

    def _advance_chain(self, chain_id: int, partial_for: set[str] | None = None) -> None:
        chain = self._chains.get(chain_id)
        if chain is None:
            return
        if not chain.steps:
            del self._chains[chain_id]
            chain.on_done()
            return
        runtime = self.runtimes.get(chain.instance_id)
        if runtime is None:
            del self._chains[chain_id]
            return
        step = chain.steps.pop(0)
        record = runtime.state.steps.get(step)
        step_def = runtime.compiled.schema.steps[step]
        if record is None or record.status is not StepStatus.DONE:
            self._advance_chain(chain_id, partial_for)
            return
        kind = "partial" if partial_for and step in partial_for else "complete"
        cost = step_def.effective_compensation_cost
        if kind == "partial":
            policy = runtime.compiled.schema.cr_policies.get(step)
            fraction = policy.incremental_fraction if policy is not None else 0.3
            cost *= fraction
        token = record_compensation(runtime.state, step_def, kind)
        runtime.engine.post_event(token, self.simulator.now)
        self._charge(chain.mechanism)
        agent = record.agent or self.system.assignment.eligible(
            runtime.state.schema_name, step
        )[0]
        self.trace.record(self.simulator.now, self.name, "step.compensate",
                          instance=chain.instance_id, step=step, comp=kind,
                          agent=agent)
        self.send(
            agent,
            "StepCompensate",
            {
                "instance_id": chain.instance_id,
                "schema_name": runtime.state.schema_name,
                "step": step,
                "kind": kind,
                "cost": cost,
                "chain_id": chain_id,
                "mechanism": chain.mechanism.value,
            },
            chain.mechanism,
        )

    def _on_compensate_ack(self, message: Message) -> None:
        self._advance_chain(message.payload["chain_id"])
