"""Engine-local coordination for centralized control.

Relative-order, mutual-exclusion and rollback-dependency authorities all
live inside the engine, so coordinated execution costs navigation load
but zero messages.  Parallel control overrides these hooks with
engine-to-engine broadcasts.
"""

from __future__ import annotations

from repro.core.coordination import mx_clearance_token, ro_clearance_token
from repro.engines.coord import SpecIndex
from repro.engines.runtime import EngineRuntime
from repro.model.coordination_spec import CoordinationSpec
from repro.runtime.metrics import Mechanism
from repro.storage.tables import StepStatus

__all__ = ["EngineCoordinationMixin"]


class EngineCoordinationMixin:
    """Coordination behavior of :class:`CentralEngineNode`."""

    def _coord_on_recover(self, runtime: EngineRuntime) -> None:
        """Re-acquire clearances whose token events died with the crash.

        MX grants live in the volatile event table, while the authority
        still considers them granted — so a recovered instance must ask
        again for every region its replayed rules will re-enter: regions
        opening at the start step (acquired by ``workflow_start``, which
        recovery does not re-run) and regions whose first step already
        completed (the token gates that step's re-fire).  Re-acquisition
        is idempotent at the authority.  RO clearances re-request
        themselves when the pair-0 step re-fires through the REUSE path.
        """
        schema_name = runtime.state.schema_name
        for spec in self.spec_index.mx_specs(schema_name):
            first, __ = spec.region_of(schema_name)
            record = runtime.state.steps.get(first)
            if first == runtime.compiled.start_step or (
                record is not None and record.status is StepStatus.DONE
            ):
                self._mx_acquire(runtime, spec)

    def _deliver_grant(self, instance_id: str, token: str) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        runtime.engine.add_event(token, self.simulator.now)

    def _coord_on_step_done(self, runtime: EngineRuntime, step: str) -> None:
        """Coordination side effects of a step completion.

        Centralized control handles everything locally (zero messages);
        parallel control overrides this with engine-to-engine broadcasts.
        """
        schema_name = runtime.state.schema_name
        instance_id = runtime.state.instance_id
        # Relative ordering: report the completion; a first-pair completion
        # also registers the instance and requests clearance for the
        # remaining pairs.
        for spec, pair_index in self.spec_index.ro_roles(schema_name, step):
            authority = self.authorities.ro[spec.name]
            key = SpecIndex.conflict_key_value(spec, runtime.state)
            self.system.obs_coordination(
                instance_id, self.name, self.simulator.now, "ro.report",
                spec_name=spec.name, step=step, pair=pair_index,
            )
            grants = authority.report_completion(schema_name, instance_id, pair_index, key)
            if pair_index == 0:
                n_pairs = len(spec.steps_a)
                for later in range(1, n_pairs):
                    grant = authority.request_clearance(
                        schema_name, instance_id, later, key
                    )
                    if grant is not None:
                        grants.append(grant)
            for grant in grants:
                self._deliver_grant(grant.instance, grant.token)

        # Mutual exclusion: release at the region's last step; acquire for
        # successor steps that open a region.
        for spec in self.spec_index.mx_region_last(schema_name, step):
            self._mx_release(runtime, spec)
        for successor in runtime.compiled.graph.successors(step):
            for spec in self.spec_index.mx_region_first(schema_name, successor):
                self._mx_acquire(runtime, spec)

        # Rollback dependency: register target-step completion.
        for spec in self.spec_index.rd_targets(schema_name, step):
            authority = self.authorities.rd[spec.name]
            self.system.obs_coordination(
                instance_id, self.name, self.simulator.now, "rd.report",
                spec_name=spec.name, step=step,
            )
            authority.report_target_executed(
                instance_id, SpecIndex.conflict_key_value(spec, runtime.state)
            )

    def _mx_acquire(self, runtime: EngineRuntime, spec: CoordinationSpec) -> None:
        current = runtime.mx_state.get(spec.name, "none")
        if current in ("requested", "held"):
            return
        authority = self.authorities.mx[spec.name]
        key = SpecIndex.conflict_key_value(spec, runtime.state)
        instance_id = runtime.state.instance_id
        granted = authority.acquire(runtime.state.schema_name, instance_id, key)
        self.system.obs_coordination(
            instance_id, self.name, self.simulator.now, "mx.acquire",
            spec_name=spec.name, granted=granted,
        )
        if granted:
            runtime.mx_state[spec.name] = "held"
            self._deliver_grant(instance_id, mx_clearance_token(spec.name, instance_id))
        else:
            runtime.mx_state[spec.name] = "requested"

    def _mx_release(self, runtime: EngineRuntime, spec: CoordinationSpec) -> None:
        if runtime.mx_state.get(spec.name) not in ("held", "requested"):
            return
        authority = self.authorities.mx[spec.name]
        key = SpecIndex.conflict_key_value(spec, runtime.state)
        runtime.mx_state[spec.name] = "released"
        self.system.obs_coordination(
            runtime.state.instance_id, self.name, self.simulator.now,
            "mx.release", spec_name=spec.name,
        )
        grantee = authority.release(
            runtime.state.schema_name, runtime.state.instance_id, key
        )
        if grantee is not None:
            __, next_instance = grantee
            next_runtime = self.runtimes.get(next_instance)
            if next_runtime is not None:
                next_runtime.mx_state[spec.name] = "held"
                self._deliver_grant(
                    next_instance, mx_clearance_token(spec.name, next_instance)
                )

    def _release_coordination(self, runtime: EngineRuntime, aborted: bool) -> None:
        """On commit/abort: free MX locks, withdraw RD (and RO if aborted)."""
        schema_name = runtime.state.schema_name
        instance_id = runtime.state.instance_id
        for spec in self.spec_index.mx_specs(schema_name):
            self._mx_release(runtime, spec)
        for authority in self.authorities.rd.values():
            authority.withdraw(instance_id)
        if aborted:
            for authority in self.authorities.ro.values():
                for grant in authority.withdraw(instance_id):
                    self._deliver_grant(grant.instance, grant.token)

    def _coord_on_rollback(self, runtime: EngineRuntime, inval_steps) -> None:
        """Rollback-dependency propagation (local in centralized control)."""
        state = runtime.state
        instance_id = state.instance_id
        for spec in self.spec_index.rd_triggers(state.schema_name):
            if spec.trigger_step_a not in inval_steps:
                continue
            authority = self.authorities.rd.get(spec.name)
            if authority is None:
                continue
            self._charge(Mechanism.COORDINATION)
            key = SpecIndex.conflict_key_value(spec, state)
            for dependent in authority.dependents_of(instance_id, key):
                self.trace.record(self.simulator.now, self.name,
                                  "rollback.dependency",
                                  trigger=instance_id, dependent=dependent,
                                  spec=spec.name)
                self.system.obs_coordination(
                    instance_id, self.name, self.simulator.now,
                    "rd.propagate", spec_name=spec.name, dependent=dependent,
                )
                self._rollback(
                    dependent, spec.rollback_to_b, Mechanism.FAILURE, from_rd=True
                )

    def _install_preconditions(self, runtime: EngineRuntime) -> None:
        schema_name = runtime.state.schema_name
        instance_id = runtime.state.instance_id
        for spec, pair_index, step in self.spec_index.ro_governed_pairs(schema_name):
            if pair_index >= 1:
                runtime.engine.add_step_precondition(
                    step, ro_clearance_token(spec.name, pair_index, instance_id)
                )
        for spec in self.spec_index.mx_specs(schema_name):
            first, __ = spec.region_of(schema_name)
            runtime.engine.add_step_precondition(
                first, mx_clearance_token(spec.name, instance_id)
            )
