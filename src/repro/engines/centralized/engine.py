"""The central workflow engine node."""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Any, Mapping

from repro.core.ocr import plan_step_action, stale_compensation_chain
from repro.core.recovery import abandoned_branch_compensation
from repro.engines.base import (
    ControlSystem,
    governed_step_count,
    record_execution_failure,
    record_execution_success,
    record_reuse,
)
from repro.engines.centralized.agents import (
    VERB_COMPENSATE_ACK,
    VERB_STATE_INFO_REPLY,
    VERB_STEP_RESULT,
)
from repro.engines.centralized.coordination import EngineCoordinationMixin
from repro.engines.centralized.recovery import EngineRecoveryMixin
from repro.engines.coord import AuthorityBundle, SpecIndex
from repro.engines.runtime import EngineRuntime, InflightStep, ProbeWait
from repro.errors import FrontEndError, SchemaError, SimulationError
from repro.obs.profile import profiled
from repro.rules.engine import RuleEngine, RuleInstance
from repro.rules.events import WF_START, step_done
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message
from repro.runtime.node import Node
from repro.storage.tables import InstanceStatus, StepStatus
from repro.storage.wfdb import WorkflowDatabase

__all__ = ["CentralEngineNode"]


class CentralEngineNode(EngineCoordinationMixin, EngineRecoveryMixin, Node):
    """The central workflow engine: owns the WFDB and navigates everything."""

    def __init__(self, name: str, system):
        super().__init__(name, system.simulator, system.network)
        self.system = system
        self.config = system.config
        self.wfdb = WorkflowDatabase()
        self.spec_index = SpecIndex()
        self.authorities = AuthorityBundle()
        self.runtimes: dict[str, EngineRuntime] = {}
        self._inflight: dict[tuple[str, str], InflightStep] = {}
        self._probes: dict[int, ProbeWait] = {}
        self._chains: dict[int, Any] = {}
        self._ids = itertools.count(1)
        self._agent_load_view: Counter = Counter()

    # ------------------------------------------------------------------ helpers

    @property
    def trace(self):
        return self.system.trace

    def _charge(self, mechanism: Mechanism, units: float = 1.0) -> None:
        self.charge(units, mechanism)

    def runtime(self, instance_id: str) -> EngineRuntime:
        try:
            return self.runtimes[instance_id]
        except KeyError:
            raise FrontEndError(f"unknown or finished instance {instance_id!r}") from None

    # ------------------------------------------------------- front-end operations

    def workflow_start(
        self,
        schema_name: str,
        instance_id: str,
        inputs: Mapping[str, Any],
        parent_link: tuple[str, str] | None = None,
    ) -> None:
        """WorkflowStart WI (invoked locally by the front-end database)."""
        compiled = self.system.compiled(schema_name)
        state = self.wfdb.create_instance(schema_name, instance_id, inputs)
        engine = RuleEngine(
            compiled,
            action=lambda rule, iid=instance_id: self._on_rule(iid, rule),
            env_provider=state.env,
            fire_hook=self.system.rule_fire_hook(self.name, instance_id),
            profile=self.network.profile,
        )
        runtime = EngineRuntime(
            state=state,
            compiled=compiled,
            engine=engine,
            governed=governed_step_count(compiled, self.spec_index.specs_for(schema_name)),
            parent_link=parent_link,
        )
        self.runtimes[instance_id] = runtime
        self.system._note_owner(instance_id, self.name)
        self._install_preconditions(runtime)
        self.system.obs_instance_started(
            instance_id, schema_name, self.name, self.simulator.now,
            parent_instance=parent_link[0] if parent_link else None,
        )
        self.trace.record(self.simulator.now, self.name, "workflow.start",
                          instance=instance_id, schema=schema_name)
        self._charge(Mechanism.NORMAL)
        # Mutual-exclusion regions opening at the start step are acquired now.
        for spec in self.spec_index.mx_region_first(schema_name, compiled.start_step):
            self._mx_acquire(runtime, spec)
        engine.post_event(WF_START, self.simulator.now)

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        # Status reads are summary-table lookups; the paper charges no
        # navigation load for them.
        return self.wfdb.status(instance_id)

    # ------------------------------------------------------------ rule actions

    def _on_rule(self, instance_id: str, rule: RuleInstance) -> None:
        if rule.kind == "execute":
            self._begin_step(instance_id, rule.step, rule)
        elif rule.kind == "loop":
            self._fire_loop(instance_id, rule)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"engine cannot run rule kind {rule.kind!r}")

    @profiled("dispatch.step")
    def _begin_step(
        self, instance_id: str, step: str, rule: RuleInstance | None = None
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        mechanism = runtime.step_mechanism(step)
        self._charge(mechanism)
        if runtime.governed:
            self._charge(Mechanism.COORDINATION, runtime.governed)

        # CompensateThread: entering a different if-then-else branch than the
        # previous execution pass compensates the abandoned branch.  Only a
        # rule triggered by the *split's* completion is a branch entry — a
        # step can simultaneously be a branch head and the confluence of the
        # other branches (it then also has rules fed by those branches).
        split = compiled.branch_first_map.get(step)
        entered_via_split = (
            split is not None
            and (rule is None or step_done(split) in rule.required)
        )
        if split is not None and entered_via_split:
            abandoned = abandoned_branch_compensation(
                compiled, runtime.state, split, step
            )
            if abandoned:
                self.trace.record(self.simulator.now, self.name, "compensate.thread",
                                  instance=instance_id, split=split,
                                  steps=",".join(abandoned))
                self._compensate_chain(
                    runtime, abandoned, runtime.recovery_mechanism,
                    on_done=lambda: None,
                )

        record = runtime.state.record(step)
        new_inputs = runtime.state.gather_inputs(step_def.inputs)
        policy = compiled.schema.cr_policies.get(step)
        if policy is None:
            from repro.model.policies import DEFAULT_POLICY as policy  # type: ignore[no-redef]
        plan = plan_step_action(step_def, record, new_inputs, policy)
        if plan.decision is not None:
            self.system.obs_ocr_planned(
                instance_id, self.name, self.simulator.now, plan
            )

        if plan.reuse_outputs:
            record.reuses += 0  # updated inside record_reuse
            token = record_reuse(runtime.state, step_def, self.simulator.now)
            self.trace.record(self.simulator.now, self.name, "step.reuse",
                              instance=instance_id, step=step)
            self.system.obs_step_done(instance_id, step, self.simulator.now)
            self.wfdb.persist(runtime.state)
            runtime.engine.post_event(token, self.simulator.now)
            self._after_step_done(instance_id, step)
            return

        def proceed() -> None:
            self._launch_execution(
                instance_id, step, plan.execution_cost, mechanism, new_inputs
            )

        if plan.compensate:
            members = compiled.schema.compensation_set_of(step)
            if members is not None:
                # Only members whose done event is *invalid* (their effects
                # belong to the rolled back pass) join the chain; ordering
                # uses their pre-rollback completion times.
                stale_times: dict[str, float] = {}
                for member in members:
                    occurrence = runtime.engine.events.occurrence(step_done(member))
                    record_m = runtime.state.steps.get(member)
                    if (
                        occurrence is not None
                        and not occurrence.valid
                        and record_m is not None
                        and record_m.status is StepStatus.DONE
                    ):
                        stale_times[member] = occurrence.time
                ordered = stale_compensation_chain(members, stale_times, step)
            else:
                ordered = [step]
            self.trace.record(self.simulator.now, self.name, "ocr.compensate",
                              instance=instance_id, step=step,
                              comp=plan.compensation_kind or "-",
                              chain=",".join(ordered))
            partial = {step} if plan.compensation_kind == "partial" else None
            self._compensate_chain(runtime, ordered, mechanism, on_done=proceed,
                                   partial_for=partial)
        else:
            proceed()

    # ------------------------------------------------------------ dispatch

    def _launch_execution(
        self,
        instance_id: str,
        step: str,
        cost: float,
        mechanism: Mechanism,
        inputs: dict[str, Any],
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        step_def = runtime.compiled.schema.steps[step]
        if step_def.subworkflow is not None:
            self._launch_nested(runtime, instance_id, step, inputs)
            return
        record = runtime.state.record(step)
        record.status = StepStatus.RUNNING
        attempt = record.executions + 1
        eligible = self.system.assignment.eligible(runtime.state.schema_name, step)
        if len(eligible) > 1 and self.config.dispatch_probes:
            probe_id = next(self._ids)
            wait = ProbeWait(
                instance_id=instance_id,
                step=step,
                waiting=set(eligible[1:]),
                loads={eligible[0]: self._agent_load_view[eligible[0]]},
                cost=cost,
                mechanism=mechanism,
                inputs=inputs,
                attempt=attempt,
            )
            self._probes[probe_id] = wait
            for agent in eligible[1:]:
                self.send(
                    agent,
                    "StateInformation",
                    {"probe_id": probe_id, "mechanism": mechanism.value},
                    mechanism,
                )
        else:
            self._send_execute(instance_id, step, eligible[0], cost, mechanism,
                               inputs, attempt)

    def _on_state_info_reply(self, message: Message) -> None:
        probe_id = message.payload["probe_id"]
        wait = self._probes.get(probe_id)
        if wait is None:
            return
        wait.waiting.discard(message.src)
        wait.loads[message.src] = message.payload["load"]
        if wait.waiting:
            return
        del self._probes[probe_id]
        agent = min(wait.loads, key=lambda a: (wait.loads[a], a))
        self._send_execute(
            wait.instance_id, wait.step, agent, wait.cost, wait.mechanism,
            wait.inputs, wait.attempt,
        )

    @profiled("dispatch.wi")
    def _send_execute(
        self,
        instance_id: str,
        step: str,
        agent: str,
        cost: float,
        mechanism: Mechanism,
        inputs: dict[str, Any],
        attempt: int,
        retry: int = 1,
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        record = runtime.state.record(step)
        record.agent = agent
        self._inflight[(instance_id, step)] = InflightStep(
            epoch=runtime.state.recovery_epoch,
            inputs=inputs,
            attempt=attempt,
            mechanism=mechanism,
            agent=agent,
            span=self.system.obs_step_dispatched(
                instance_id, step, self.name, self.simulator.now,
                agent=agent, attempt=attempt, mechanism=mechanism.value,
            ),
            cost=cost,
        )
        self._agent_load_view[agent] += 1
        self.trace.record(self.simulator.now, self.name, "step.dispatch",
                          instance=instance_id, step=step, agent=agent,
                          epoch=runtime.state.recovery_epoch)
        self.send(
            agent,
            "StepExecute",
            {
                "instance_id": instance_id,
                "schema_name": runtime.state.schema_name,
                "step": step,
                "inputs": inputs,
                "attempt": attempt,
                "cost": cost,
                "epoch": runtime.state.recovery_epoch,
                "mechanism": mechanism.value,
            },
            mechanism,
        )
        if self.system.faults is not None:
            self._arm_step_watchdog(
                instance_id, step, runtime.state.recovery_epoch, retry
            )

    # ------------------------------------------------------------ step-retry watchdog

    #: Watchdog re-arms before giving up on a step whose executors never
    #: answer; bounded so a hostile fault plan cannot keep the simulation
    #: alive forever (the wedged instance then surfaces as a liveness
    #: violation instead).
    MAX_STEP_RETRIES = 25

    def _arm_step_watchdog(
        self, instance_id: str, step: str, epoch: int, retry: int
    ) -> None:
        """Under fault injection, dispatched steps get a timeout: in-flight
        work on a crashed application agent is volatile and would otherwise
        wedge the instance (the reliable-transport assumption only covers
        messages, not the agent's work)."""
        self.simulator.schedule(
            self.config.step_status_timeout, self._step_watchdog,
            instance_id, step, epoch, retry,
        )

    def _step_watchdog(
        self, instance_id: str, step: str, epoch: int, retry: int
    ) -> None:
        if not self.is_up:
            return  # a recovered engine re-dispatches via rule re-firing
        inflight = self._inflight.get((instance_id, step))
        runtime = self.runtimes.get(instance_id)
        if (
            inflight is None
            or inflight.epoch != epoch
            or runtime is None
            or runtime.state.status is not InstanceStatus.RUNNING
            or runtime.state.recovery_epoch != epoch
        ):
            return  # completed, rolled back, or finished in the meantime
        if retry > self.MAX_STEP_RETRIES:
            self.trace.record(self.simulator.now, self.name,
                              "step.retry_exhausted",
                              instance=instance_id, step=step)
            return
        eligible = self.system.assignment.eligible(runtime.state.schema_name, step)
        agent = next((a for a in eligible if self.network.is_up(a)), None)
        if agent is None:
            # Every eligible agent is down: wait for a recovery.
            self.simulator.schedule(
                self.config.step_status_poll_interval, self._step_watchdog,
                instance_id, step, epoch, retry + 1,
            )
            return
        self.trace.record(self.simulator.now, self.name, "step.redispatch",
                          instance=instance_id, step=step, agent=agent,
                          was=inflight.agent, retry=retry)
        self.system.obs_step_finished(
            inflight.span, self.simulator.now, status="timeout"
        )
        self._agent_load_view[inflight.agent] -= 1
        del self._inflight[(instance_id, step)]
        # Re-dispatch (a late duplicate result is discarded by the
        # stale-result guard once the retried execution's result lands
        # first — the inflight record is popped, keeping commits
        # at-most-once).
        self._send_execute(
            instance_id, step, agent, inflight.cost, inflight.mechanism,
            inflight.inputs, inflight.attempt, retry=retry + 1,
        )

    def _on_step_result(self, message: Message) -> None:
        payload = message.payload
        instance_id, step = payload["instance_id"], payload["step"]
        key = (instance_id, step)
        inflight = self._inflight.get(key)
        runtime = self.runtimes.get(instance_id)
        current = (
            inflight is not None
            and inflight.epoch == payload["epoch"]
            and runtime is not None
            and payload["epoch"] == runtime.state.recovery_epoch
        )
        if not current:
            # Stale result from before a rollback/abort: discard.  The
            # rollback already retired the matching in-flight record and
            # reset the step status, so nothing else to do here.
            self.trace.record(self.simulator.now, self.name, "step.stale_result",
                              instance=instance_id, step=step)
            return
        del self._inflight[key]
        self._agent_load_view[inflight.agent] -= 1
        state = runtime.state
        step_def = runtime.compiled.schema.steps[step]
        if payload["success"]:
            token = record_execution_success(
                state, step_def, inflight.inputs, payload["outputs"],
                self.simulator.now, inflight.agent,
            )
            self.trace.record(self.simulator.now, self.name, "step.done",
                              instance=instance_id, step=step)
            self.system.obs_step_finished(
                inflight.span, self.simulator.now, status="done"
            )
            self.system.obs_step_done(instance_id, step, self.simulator.now)
            self.wfdb.persist(state)
            runtime.engine.post_event(token, self.simulator.now)
            self._after_step_done(instance_id, step)
        else:
            token = record_execution_failure(
                state, step_def, inflight.inputs, self.simulator.now, inflight.agent
            )
            self.trace.record(self.simulator.now, self.name, "step.fail",
                              instance=instance_id, step=step,
                              error=payload.get("error") or "-")
            self.dump_flight("step.fail", instance=instance_id, step=step)
            self.system.obs_step_finished(
                inflight.span, self.simulator.now, status="failed",
                error=payload.get("error") or "-",
            )
            self.wfdb.persist(state)
            runtime.engine.post_event(token, self.simulator.now)
            self._handle_failure(instance_id, step)

    # ------------------------------------------------------------ nested workflows

    def _launch_nested(
        self, runtime: EngineRuntime, instance_id: str, step: str, inputs: dict[str, Any]
    ) -> None:
        step_def = runtime.compiled.schema.steps[step]
        child_schema = self.system.compiled(step_def.subworkflow)
        record = runtime.state.record(step)
        record.status = StepStatus.RUNNING
        child_values = list(inputs.values())
        child_inputs = dict(zip(child_schema.schema.inputs, child_values))
        child_id = f"{instance_id}.{step}#{record.executions + 1}"
        runtime.nested_children[step] = child_id
        self.trace.record(self.simulator.now, self.name, "nested.start",
                          instance=instance_id, step=step, child=child_id)
        self.workflow_start(
            child_schema.name, child_id, child_inputs,
            parent_link=(instance_id, step),
        )

    def _on_nested_done(
        self, parent_id: str, parent_step: str, child_outputs: Mapping[str, Any]
    ) -> None:
        runtime = self.runtimes.get(parent_id)
        if runtime is None:
            return
        step_def = runtime.compiled.schema.steps[parent_step]
        missing = [o for o in step_def.outputs if o not in child_outputs]
        if missing:
            raise SchemaError(
                f"nested workflow for {parent_id}.{parent_step} did not produce "
                f"outputs {missing}"
            )
        record = runtime.state.record(parent_step)
        inputs = record.last_inputs or runtime.state.gather_inputs(step_def.inputs)
        outputs = {o: child_outputs[o] for o in step_def.outputs}
        token = record_execution_success(
            runtime.state, step_def, inputs, outputs, self.simulator.now, self.name
        )
        self.system.obs_step_done(parent_id, parent_step, self.simulator.now)
        self.wfdb.persist(runtime.state)
        runtime.engine.post_event(token, self.simulator.now)
        self._after_step_done(parent_id, parent_step)

    # ------------------------------------------------------------ after-done hooks

    def _after_step_done(self, instance_id: str, step: str) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.state.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        self._coord_on_step_done(runtime, step)

        # Termination: terminal steps report unless a loop continues.
        if step in compiled.terminal_steps and not runtime.loop_continues(step):
            runtime.reported.add(step)
            if compiled.commit_ready(runtime.reported):
                self._commit(instance_id)

    # ------------------------------------------------------------ commit

    def _commit(self, instance_id: str) -> None:
        runtime = self.runtimes.pop(instance_id, None)
        if runtime is None:
            return
        self.wfdb.set_status(instance_id, InstanceStatus.COMMITTED)
        outputs = ControlSystem.workflow_outputs(runtime.compiled, runtime.state)
        self._release_coordination(runtime, aborted=False)
        self.system._record_outcome(
            instance_id,
            runtime.state.schema_name,
            InstanceStatus.COMMITTED,
            outputs,
            self.simulator.now,
        )
        self.trace.record(self.simulator.now, self.name, "workflow.commit",
                          instance=instance_id)
        if runtime.parent_link is not None:
            parent_id, parent_step = runtime.parent_link
            self._on_nested_done(parent_id, parent_step, outputs)
        self.wfdb.archive(instance_id)

    # ------------------------------------------------------------ messaging

    def handle_message(self, message: Message) -> None:
        handler = {
            VERB_STEP_RESULT: self._on_step_result,
            VERB_COMPENSATE_ACK: self._on_compensate_ack,
            VERB_STATE_INFO_REPLY: self._on_state_info_reply,
        }.get(message.interface)
        if handler is None:
            raise SimulationError(
                f"engine {self.name} cannot handle {message.interface!r}"
            )
        handler(message)

    # ------------------------------------------------------------ crash/recovery

    def on_crash(self) -> None:
        """Engine crash loses volatile rule engines; WFDB WAL survives."""
        self.runtimes.clear()
        self._inflight.clear()
        self._probes.clear()
        self._chains.clear()

    @profiled("recovery.replay")
    def on_recover(self) -> None:
        """Forward recovery: rebuild instance tables from the WAL.

        Rule-engine state is reconstructed from the recovered event history
        recorded in step records; in-flight executions at crash time are
        re-dispatched by re-firing their rules.
        """
        restored = self.wfdb.recover()
        for state in list(self.wfdb.instances()):
            if state.status is not InstanceStatus.RUNNING:
                continue
            compiled = self.system.compiled(state.schema_name)
            engine = RuleEngine(
                compiled,
                action=lambda rule, iid=state.instance_id: self._on_rule(iid, rule),
                env_provider=state.env,
                fire_hook=self.system.rule_fire_hook(self.name, state.instance_id),
                profile=self.network.profile,
            )
            runtime = EngineRuntime(
                state=state,
                compiled=compiled,
                engine=engine,
                governed=governed_step_count(
                    compiled, self.spec_index.specs_for(state.schema_name)
                ),
            )
            self.runtimes[state.instance_id] = runtime
            self._install_preconditions(runtime)
            # Replay history into the event table without re-running actions:
            # mark done steps' rules as fired by posting their events after
            # pre-marking records.  RUNNING steps (in flight at crash) are
            # reset so their rules re-fire and re-dispatch.
            for record in state.steps.values():
                if record.status is StepStatus.RUNNING:
                    record.status = StepStatus.NOT_STARTED
            self._coord_on_recover(runtime)
            engine.post_event(WF_START, self.simulator.now)
        self.trace.record(self.simulator.now, self.name, "engine.recovered",
                          instances=restored)
