"""The "dumb" application agent of centralized/parallel control."""

from __future__ import annotations

from repro.core.programs import ExecutionContext
from repro.errors import SimulationError
from repro.runtime.metrics import Mechanism
from repro.runtime.messages import Message
from repro.runtime.node import Node

__all__ = [
    "ApplicationAgentNode",
    "VERB_COMPENSATE_ACK",
    "VERB_STATE_INFO_REPLY",
    "VERB_STEP_RESULT",
]

# Internal (non-WI) protocol verbs between engine and agents.
VERB_STEP_RESULT = "StepResult"
VERB_COMPENSATE_ACK = "CompensateAck"
VERB_STATE_INFO_REPLY = "StateInformationReply"


class ApplicationAgentNode(Node):
    """A "dumb" application agent: executes and compensates step programs.

    The agent knows nothing about workflow structure; it receives fully
    resolved input values, runs the (black box) program after the step's
    simulated service time, and reports the result.
    """

    def __init__(self, name: str, system):
        super().__init__(name, system.simulator, system.network)
        self.system = system
        self.executing = 0

    def on_crash(self) -> None:
        # In-progress executions die with the node; their completion
        # continuations are crash-epoch-gated in schedule_causal, so the
        # load counter must restart from zero too.
        self.executing = 0

    def handle_message(self, message: Message) -> None:
        handler = {
            "StepExecute": self._on_step_execute,
            "StepCompensate": self._on_step_compensate,
            "StateInformation": self._on_state_information,
        }.get(message.interface)
        if handler is None:
            raise SimulationError(
                f"agent {self.name} cannot handle {message.interface!r}"
            )
        handler(message)

    # -- execution -------------------------------------------------------------

    def _on_step_execute(self, message: Message) -> None:
        payload = message.payload
        self.executing += 1
        cost = payload["cost"]
        delay = cost * self.system.config.work_time_scale
        self.schedule_causal(delay, self._complete_step, message)

    def _complete_step(self, message: Message) -> None:
        payload = message.payload
        self.executing -= 1
        schema_name = payload["schema_name"]
        step = payload["step"]
        compiled = self.system.compiled(schema_name)
        step_def = compiled.schema.steps[step]
        program = self.system.programs.get(step_def.program, step_def.outputs)
        ctx = ExecutionContext(
            schema_name=schema_name,
            instance_id=payload["instance_id"],
            step=step,
            attempt=payload["attempt"],
            now=self.simulator.now,
            node=self.name,
            rng=self.system.rng.stream(f"prog:{payload['instance_id']}:{step}"),
        )
        result = program.execute(payload["inputs"], ctx)
        self.network.metrics.record_work(self.name, "execute", payload["cost"])
        self.send(
            message.src,
            VERB_STEP_RESULT,
            {
                "instance_id": payload["instance_id"],
                "schema_name": schema_name,
                "step": step,
                "epoch": payload["epoch"],
                "success": result.success,
                "outputs": result.outputs,
                "error": result.error,
            },
            Mechanism(payload["mechanism"]),
        )

    # -- compensation -------------------------------------------------------------

    def _on_step_compensate(self, message: Message) -> None:
        payload = message.payload
        delay = payload["cost"] * self.system.config.work_time_scale
        self.schedule_causal(delay, self._complete_compensation, message)

    def _complete_compensation(self, message: Message) -> None:
        payload = message.payload
        self.network.metrics.record_work(self.name, "compensate", payload["cost"])
        self.send(
            message.src,
            VERB_COMPENSATE_ACK,
            {
                "instance_id": payload["instance_id"],
                "step": payload["step"],
                "chain_id": payload["chain_id"],
            },
            Mechanism(payload["mechanism"]),
        )

    # -- probing --------------------------------------------------------------------

    def _on_state_information(self, message: Message) -> None:
        self.send(
            message.src,
            VERB_STATE_INFO_REPLY,
            {"probe_id": message.payload["probe_id"], "load": self.executing},
            Mechanism(message.payload["mechanism"]),
        )
