"""Distributed workflow control (paper Sections 4 and 5).

No central engine: the agents that execute steps also schedule and
coordinate the workflow instances.  Per instance:

* the **coordination agent** — the (first) agent eligible for the start
  step — handles WorkflowStart/Abort/Status/ChangeInputs, tracks terminal
  step completions (StepCompleted) and commits the workflow;
* **execution agents** navigate by exchanging *workflow packets* carrying
  the accumulated data/event state; every eligible agent of a successor
  step receives the packet ("in the case of an if-then-else branching ...
  the workflow packet is sent to the two agents"), which yields the
  paper's ``s·a + f`` normal-execution message count per instance;
* **termination agents** (those executing terminal steps) report to the
  coordination agent via StepCompleted.

Failure handling follows Section 5.2 exactly: a step failure invokes
``WorkflowRollback()`` at the agent responsible for the (statically known)
rollback origin; that agent probes the affected threads with
``HaltThread()`` calls that invalidate downstream ``step.done`` events and
quiesce control flow; re-execution then proceeds with the OCR strategy,
compensation dependent sets travelling as ``CompensateSet()`` chains in
reverse execution order.  Abandoned if-then-else branches are undone by
``CompensateThread()`` chains.

Agent failures: packets to a down agent queue durably (persistent
messaging); eligible peers of the assigned executor watch for its
completion and, for *query* steps, take over deterministically when it is
down — update steps wait for recovery, as the paper requires.  A recovered
agent rebuilds its fragments from the AGDB write-ahead log and
re-navigates its completed steps (idempotent at receivers).
"""

from __future__ import annotations

import itertools
import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.coordination import mx_clearance_token, ro_clearance_token
from repro.core.interfaces import WI
from repro.core.ocr import plan_step_action
from repro.core.packets import WorkflowPacket
from repro.core.programs import ExecutionContext
from repro.core.recovery import RecoveryTokens, invalidation_tokens
from repro.engines.base import (
    ControlSystem,
    SystemConfig,
    governed_step_count,
    record_compensation,
    record_execution_failure,
    record_execution_success,
    record_reuse,
)
from repro.engines.coord import AuthorityBundle, SpecIndex
from repro.errors import FrontEndError, SchemaError, SimulationError
from repro.model.compiler import CompiledSchema
from repro.model.coordination_spec import CoordinationSpec
from repro.model.policies import DEFAULT_POLICY
from repro.model.schema import StepType
from repro.rules.engine import RuleEngine, RuleInstance
from repro.rules.events import WF_START, step_done
from repro.sim.metrics import Mechanism
from repro.sim.network import Message
from repro.sim.node import Node
from repro.storage.agdb import AgentDatabase
from repro.storage.tables import InstanceState, InstanceStatus, StepStatus

__all__ = ["DistributedControlSystem", "WorkflowAgentNode", "elect_executor"]

VERB_STEP_STATUS_REPLY = "StepStatusReply"
VERB_STATUS_PROBE = "WorkflowStatusProbe"
VERB_STATUS_PROBE_REPORT = "WorkflowStatusProbeReport"
VERB_PURGE = "PurgeNotice"
VERB_UNHANDLED_FAILURE = "UnhandledFailure"
VERB_NESTED_DONE = "NestedDone"


def elect_executor(
    eligible: tuple[str, ...],
    schema_name: str,
    instance_id: str,
    step: str,
    is_up=None,
) -> str:
    """Deterministic executor election among eligible agents.

    All agents (senders and receivers alike) compute the same permutation
    from a hash of ``(schema, instance, step)``; the first *up* agent in
    that order executes.  Epoch-independent so that a re-execution after
    rollback lands on the agent holding the previous execution's data —
    the precondition for OCR reuse.
    """
    if len(eligible) == 1:
        return eligible[0]
    seed = zlib.crc32(f"{schema_name}|{instance_id}|{step}".encode("utf-8"))
    start = seed % len(eligible)
    order = [eligible[(start + i) % len(eligible)] for i in range(len(eligible))]
    if is_up is not None:
        for agent in order:
            if is_up(agent):
                return agent
    return order[0]


@dataclass
class _AgentRuntime:
    """An agent's volatile enactment state for one instance fragment."""

    fragment: InstanceState
    compiled: CompiledSchema
    engine: RuleEngine
    hosted: frozenset[str]
    #: token -> invalidation round: occurrences from earlier rounds are
    #: stale.  Piggybacked on every outgoing packet (harmless to carry
    #: forever: a round-R cutoff cannot kill a round>=R occurrence).
    known_invalidations: dict[str, int] = field(default_factory=dict)
    executors: dict[str, str] = field(default_factory=dict)
    assigned: dict[str, str] = field(default_factory=dict)  # step -> agent
    recovery_mechanism: Mechanism = Mechanism.FAILURE
    #: Steps this agent executed and navigated onward (HaltThread must
    #: propagate through them).
    forwarded: set[str] = field(default_factory=set)
    loop_fires: Counter = field(default_factory=Counter)
    origin_history: dict[int, str] = field(default_factory=dict)
    #: Established (spec, leading, lagging) orders this agent has learned —
    #: piggybacked on outgoing packets (Figure 7's "R.O." lines).
    ro_info: set[tuple[str, str, str]] = field(default_factory=set)
    mx_state: dict[str, str] = field(default_factory=dict)
    #: step -> epoch of the execution currently in flight on this agent;
    #: guards stale completions from before a rollback.
    running_exec: dict[str, int] = field(default_factory=dict)
    input_overrides: dict[str, Any] = field(default_factory=dict)
    pending_exec: dict[str, tuple] = field(default_factory=dict)
    #: step -> open execution Span of the program currently running here.
    exec_spans: dict[str, Any] = field(default_factory=dict)
    parent_link: tuple[str, str] | None = None
    governed: int = 0
    watchdogs: set[str] = field(default_factory=set)


@dataclass
class _CommitTracker:
    """Coordination-agent record for one instance it coordinates."""

    reported: dict[str, int] = field(default_factory=dict)  # terminal -> epoch
    epoch: int = 0
    last_origin: str | None = None
    executors: dict[str, str] = field(default_factory=dict)
    done_times: dict[str, float] = field(default_factory=dict)
    data: dict[str, Any] = field(default_factory=dict)
    #: recovery epoch -> rollback origin, merged from terminal reports; used
    #: to decide which older reports a rollback invalidated.
    origin_history: dict[int, str] = field(default_factory=dict)
    parent_link: tuple[str, str] | None = None
    finished: bool = False


class WorkflowAgentNode(Node):
    """A distributed workflow agent (execution/coordination/termination roles)."""

    def __init__(self, name: str, system: "DistributedControlSystem"):
        super().__init__(name, system.simulator, system.network)
        self.system = system
        self.config = system.config
        self.agdb = AgentDatabase(name)
        self.spec_index = system.spec_index
        self.authorities = AuthorityBundle()
        self.runtimes: dict[str, _AgentRuntime] = {}
        self.trackers: dict[str, _CommitTracker] = {}
        self._purge_pending: list[str] = []
        self._purge_scheduled = False
        self._load_probes: dict[int, dict] = {}
        self._probe_ids = itertools.count(1)
        self._seen_status_probes: set[tuple[str, int]] = set()
        self._probe_reports: dict[str, list[dict]] = {}

    # ------------------------------------------------------------------ wiring

    @property
    def trace(self):
        return self.system.trace

    def hosted_steps(self, compiled: CompiledSchema) -> frozenset[str]:
        hosted = set()
        for step in compiled.schema.steps:
            if self.name in self.agdb.eligible_agents(compiled.name, step):
                hosted.add(step)
        return frozenset(hosted)

    def _coordination_agent_of(self, compiled: CompiledSchema) -> str:
        return self.agdb.eligible_agents(compiled.name, compiled.start_step)[0]

    def _elect(self, compiled: CompiledSchema, instance_id: str, step: str) -> str:
        eligible = self.agdb.eligible_agents(compiled.name, step)
        if step == compiled.start_step:
            # Convention: the coordination agent executes the start step
            # ("typically the agent responsible for executing the first
            # step of the workflow").
            return eligible[0]
        return elect_executor(
            eligible, compiled.name, instance_id, step, is_up=self.network.is_up
        )

    # ------------------------------------------------------------------ runtimes

    def _runtime(
        self,
        schema_name: str,
        instance_id: str,
        inputs: Mapping[str, Any] | None = None,
        parent_link: tuple[str, str] | None = None,
    ) -> _AgentRuntime:
        runtime = self.runtimes.get(instance_id)
        if runtime is not None:
            return runtime
        compiled = self.system.compiled(schema_name)
        fragment = self.agdb.ensure_fragment(schema_name, instance_id, inputs)
        hosted = self.hosted_steps(compiled)
        engine = RuleEngine(
            compiled,
            action=lambda rule, iid=instance_id: self._on_rule(iid, rule),
            env_provider=fragment.env,
            steps=hosted,
            fire_hook=self.system.rule_fire_hook(self.name, instance_id),
        )
        runtime = _AgentRuntime(
            fragment=fragment,
            compiled=compiled,
            engine=engine,
            hosted=hosted,
            parent_link=parent_link,
            governed=governed_step_count(
                compiled, self.spec_index.specs_for(schema_name)
            ),
        )
        self.runtimes[instance_id] = runtime
        self._install_preconditions(runtime, instance_id)
        return runtime

    def _install_preconditions(self, runtime: _AgentRuntime, instance_id: str) -> None:
        schema_name = runtime.fragment.schema_name
        for spec, pair_index, step in self.spec_index.ro_governed_pairs(schema_name):
            if pair_index >= 1 and step in runtime.hosted:
                runtime.engine.add_step_precondition(
                    step, ro_clearance_token(spec.name, pair_index, instance_id)
                )
        for spec in self.spec_index.mx_specs(schema_name):
            first, __ = spec.region_of(schema_name)
            if first in runtime.hosted:
                runtime.engine.add_step_precondition(
                    first, mx_clearance_token(spec.name, instance_id)
                )

    def _persist(self, runtime: _AgentRuntime) -> None:
        runtime.fragment.events_snapshot = runtime.engine.events.export_versioned()
        self.agdb.persist_fragment(runtime.fragment)

    # ------------------------------------------------------------------ front-end WIs

    def workflow_start(
        self,
        schema_name: str,
        instance_id: str,
        inputs: Mapping[str, Any],
        parent_link: tuple[str, str] | None = None,
    ) -> None:
        """WorkflowStart WI (front-end database calls the coordination agent)."""
        compiled = self.system.compiled(schema_name)
        if self._coordination_agent_of(compiled) != self.name:
            raise FrontEndError(
                f"{self.name} is not the coordination agent for {schema_name!r}"
            )
        self.agdb.set_summary(instance_id, InstanceStatus.RUNNING)
        self.trackers[instance_id] = _CommitTracker(parent_link=parent_link)
        runtime = self._runtime(schema_name, instance_id, inputs, parent_link)
        self.system.obs_instance_started(
            instance_id, schema_name, self.name, self.simulator.now,
            parent_instance=parent_link[0] if parent_link else None,
        )
        self.system._note_owner(instance_id, self.name)
        self.trace.record(self.simulator.now, self.name, "workflow.start",
                          instance=instance_id, schema=schema_name)
        self.charge(1.0, Mechanism.NORMAL)
        # A mutual-exclusion region opening at the start step is acquired now.
        for spec in self.spec_index.mx_region_first(schema_name, compiled.start_step):
            self._mx_request(runtime, instance_id, spec)
        runtime.assigned[compiled.start_step] = self.name
        runtime.engine.post_event(WF_START, self.simulator.now,
                                  runtime.fragment.invalidation_round)

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        """WorkflowStatus WI, answered from the coordination summary table."""
        return self.agdb.summary(instance_id)

    def workflow_abort(self, instance_id: str) -> None:
        """WorkflowAbort WI at the coordination agent."""
        status = self.agdb.summary(instance_id)
        if status is InstanceStatus.COMMITTED:
            # "any request for aborting the workflow ... after a workflow
            # commit will be rejected."
            self.trace.record(self.simulator.now, self.name, "abort.rejected",
                              instance=instance_id, reason="committed")
            return
        if status is InstanceStatus.ABORTED:
            return
        tracker = self.trackers.get(instance_id)
        runtime = self.runtimes.get(instance_id)
        if runtime is None or tracker is None:
            raise FrontEndError(f"unknown instance {instance_id!r}")
        compiled = runtime.compiled
        schema = compiled.schema
        self.trace.record(self.simulator.now, self.name, "workflow.abort.request",
                          instance=instance_id)
        self.charge(1.0, Mechanism.ABORT)
        # Compensate the abort-compensation steps: the coordination agent
        # "may have to send messages to all eligible agents" since it does
        # not know which eligible agent executed each step.
        for step in schema.abort_compensation_steps:
            for agent in self.agdb.eligible_agents(schema.name, step):
                payload = {
                    "schema_name": schema.name,
                    "instance_id": instance_id,
                    "step": step,
                    "kind": "complete",
                    "reason": "abort",
                }
                if agent == self.name:
                    self._on_step_compensate_local(payload, Mechanism.ABORT)
                else:
                    self.send(agent, WI.STEP_COMPENSATE.value, payload, Mechanism.ABORT)
        # Halt every thread starting from the first step.
        epoch = runtime.fragment.recovery_epoch + 1
        self.system.obs_recovery_started(
            instance_id, self.name, self.simulator.now, origin=None,
            epoch=epoch, mechanism="abort",
        )
        self._halt_from(runtime, instance_id, compiled.start_step, epoch,
                        Mechanism.ABORT, include_origin_agent=True)
        tracker.finished = True
        self.agdb.set_summary(instance_id, InstanceStatus.ABORTED)
        runtime.fragment.status = InstanceStatus.ABORTED
        self._persist(runtime)
        self._withdraw_coordination(instance_id, runtime, aborted=True)
        self.system._record_outcome(
            instance_id, schema.name, InstanceStatus.ABORTED, {}, self.simulator.now
        )
        self.trace.record(self.simulator.now, self.name, "workflow.aborted",
                          instance=instance_id)

    def workflow_change_inputs(
        self, instance_id: str, changes: Mapping[str, Any]
    ) -> None:
        """WorkflowChangeInputs WI at the coordination agent."""
        status = self.agdb.summary(instance_id)
        if status is not InstanceStatus.RUNNING:
            self.trace.record(self.simulator.now, self.name,
                              "change_inputs.rejected",
                              instance=instance_id, reason=status.value)
            return
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            raise FrontEndError(f"unknown instance {instance_id!r}")
        compiled = runtime.compiled
        self.charge(1.0, Mechanism.INPUT_CHANGE)
        changed_refs = {f"WF.{name}" for name in changes}
        origin = None
        for step in compiled.graph.topo_order:
            if changed_refs.intersection(compiled.schema.steps[step].inputs):
                origin = step
                break
        self.trace.record(self.simulator.now, self.name, "workflow.change_inputs",
                          instance=instance_id, origin=origin or "-")
        runtime.fragment.apply_input_changes(changes)
        runtime.input_overrides.update(
            {f"WF.{name}": value for name, value in changes.items()}
        )
        self._persist(runtime)
        if origin is None:
            return
        target = runtime.executors.get(origin) or self._elect(
            compiled, instance_id, origin
        )
        payload = {
            "schema_name": compiled.name,
            "instance_id": instance_id,
            "origin": origin,
            "epoch": runtime.fragment.recovery_epoch + 1,
            "changes": dict(changes),
        }
        if target == self.name:
            self._on_inputs_changed_local(payload)
        else:
            self.send(target, WI.INPUTS_CHANGED.value, payload, Mechanism.INPUT_CHANGE)

    # ------------------------------------------------------------------ messaging

    def handle_message(self, message: Message) -> None:
        self.charge(1.0, message.mechanism)
        handlers = {
            WI.WORKFLOW_START.value: self._on_workflow_start_msg,
            WI.STEP_EXECUTE.value: self._on_step_execute,
            WI.STEP_COMPLETED.value: self._on_step_completed,
            WI.WORKFLOW_ROLLBACK.value: self._on_workflow_rollback,
            WI.HALT_THREAD.value: self._on_halt_thread,
            WI.COMPENSATE_SET.value: self._on_compensate_set,
            WI.COMPENSATE_THREAD.value: self._on_compensate_thread,
            WI.STEP_COMPENSATE.value: self._on_step_compensate,
            WI.STEP_STATUS.value: self._on_step_status,
            WI.INPUTS_CHANGED.value: self._on_inputs_changed,
            WI.ADD_RULE.value: self._on_add_rule,
            WI.ADD_EVENT.value: self._on_add_event,
            WI.ADD_PRECONDITION.value: self._on_add_precondition,
            WI.STATE_INFORMATION.value: self._on_state_information,
            VERB_STEP_STATUS_REPLY: self._on_step_status_reply,
            "StateInformationReply": self._on_state_information_reply,
            VERB_STATUS_PROBE: self._on_status_probe,
            VERB_STATUS_PROBE_REPORT: self._on_status_probe_report,
            VERB_PURGE: self._on_purge,
            VERB_UNHANDLED_FAILURE: self._on_unhandled_failure,
            VERB_NESTED_DONE: self._on_nested_done,
        }
        handler = handlers.get(message.interface)
        if handler is None:
            raise SimulationError(
                f"agent {self.name} cannot handle {message.interface!r}"
            )
        handler(message)

    def _on_workflow_start_msg(self, message: Message) -> None:
        payload = message.payload
        parent_link = payload.get("parent_link")
        self.workflow_start(
            payload["schema_name"],
            payload["instance_id"],
            payload["inputs"],
            parent_link=tuple(parent_link) if parent_link else None,
        )

    # ------------------------------------------------------------------ packets

    def _on_step_execute(self, message: Message) -> None:
        packet = WorkflowPacket.from_payload(message.payload)
        self._ingest_packet(packet)

    def _ingest_packet(self, packet: WorkflowPacket) -> None:
        instance_id = packet.instance_id
        if self.agdb.was_purged(instance_id):
            return
        runtime = self._runtime(packet.schema_name, instance_id,
                                parent_link=packet.parent_link)
        fragment = runtime.fragment
        if fragment.status is not InstanceStatus.RUNNING:
            return
        if packet.recovery_epoch < fragment.recovery_epoch:
            self.trace.record(self.simulator.now, self.name, "packet.stale",
                              instance=instance_id, step=packet.target_step)
            return
        if packet.recovery_epoch > fragment.recovery_epoch:
            fragment.recovery_epoch = packet.recovery_epoch
            if packet.mechanism in (Mechanism.FAILURE, Mechanism.INPUT_CHANGE):
                runtime.recovery_mechanism = packet.mechanism
        if runtime.governed:
            self.charge(float(runtime.governed), Mechanism.COORDINATION)
        # Invalidations first, then state merge, then events (which may fire
        # rules against the merged data).  The fragment adopts the highest
        # round it hears about so its own re-executions outlive the cutoffs.
        for token, round in packet.invalidations.items():
            prev = runtime.known_invalidations.get(token, 0)
            runtime.known_invalidations[token] = max(prev, int(round))
        if packet.invalidations:
            fragment.invalidation_round = max(
                fragment.invalidation_round, *packet.invalidations.values()
            )
        runtime.engine.apply_invalidations(packet.invalidations)
        fragment.merge_data(packet.data)
        if runtime.input_overrides:
            fragment.merge_data(runtime.input_overrides)
        runtime.executors.update(packet.executors)
        runtime.ro_info.update(packet.ro_info)
        if packet.assigned_agent is not None:
            runtime.assigned[packet.target_step] = packet.assigned_agent
        if (
            self.config.agent_failure_recovery
            and packet.assigned_agent not in (None, self.name)
            and packet.target_step not in runtime.watchdogs
        ):
            runtime.watchdogs.add(packet.target_step)
            self.simulator.schedule(
                self.config.step_status_timeout,
                self._watchdog, instance_id, packet.target_step,
            )
        # Mutual-exclusion region head arriving: the assigned executor asks
        # the authority for the region lock.
        if packet.assigned_agent == self.name:
            for spec in self.spec_index.mx_region_first(
                packet.schema_name, packet.target_step
            ):
                self._mx_request(runtime, instance_id, spec)
        # Merge without pumping, then re-apply everything this agent knows
        # to be invalidated (a stale packet may carry — and revive — an
        # occurrence this agent already invalidated), and only then fire.
        runtime.engine.events.merge(packet.events, self.simulator.now)
        runtime.engine.apply_invalidations(runtime.known_invalidations)
        runtime.engine.reevaluate()
        self._persist(runtime)

    # ------------------------------------------------------------------ rule firing

    def _on_rule(self, instance_id: str, rule: RuleInstance) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        if rule.kind == "loop":
            self._fire_loop(instance_id, rule)
            return
        step = rule.step
        assigned = runtime.assigned.get(step) or self._elect(
            runtime.compiled, instance_id, step
        )
        if assigned != self.name:
            return  # another eligible agent executes; we just hold state
        entered_via_split = False
        split = runtime.compiled.branch_first_map.get(step)
        if split is not None and step_done(split) in rule.required:
            entered_via_split = True
        self._execute_step(instance_id, step, entered_via_split=entered_via_split)

    def _step_mechanism(self, runtime: _AgentRuntime, step: str) -> Mechanism:
        record = runtime.fragment.steps.get(step)
        if record is not None and (record.executions > 0 or record.compensations > 0):
            return runtime.recovery_mechanism
        return Mechanism.NORMAL

    def _execute_step(
        self, instance_id: str, step: str, entered_via_split: bool = False
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        fragment = runtime.fragment
        step_def = compiled.schema.steps[step]
        record = fragment.record(step)
        if record.status is StepStatus.RUNNING:
            return  # already executing locally
        mechanism = self._step_mechanism(runtime, step)
        self.charge(1.0, mechanism)

        # CompensateThread: abandoning the previously executed branch.  The
        # agent entering the new branch cannot know which abandoned steps
        # actually ran (their completions never flowed here), so the chain
        # carries the *static* member list in reverse topological order and
        # each hop agent checks locally — mirroring CompensateSet().
        if entered_via_split:
            split = compiled.branch_first_map[step]
            index = compiled.graph.topo_index
            abandoned = sorted(
                (
                    m
                    for m in compiled.abandoned_branch_members(split, step)
                    if compiled.schema.steps[m].compensable
                ),
                key=lambda m: -index(m),
            )
            if abandoned:
                self._start_compensate_thread(runtime, instance_id, abandoned,
                                              runtime.recovery_mechanism)

        new_inputs = fragment.gather_inputs(step_def.inputs)
        policy = compiled.schema.cr_policies.get(step, DEFAULT_POLICY)
        plan = plan_step_action(step_def, record, new_inputs, policy)
        if plan.decision is not None:
            self.system.obs_ocr_planned(
                instance_id, self.name, self.simulator.now, plan
            )

        if plan.reuse_outputs:
            token = record_reuse(fragment, step_def, self.simulator.now)
            self.trace.record(self.simulator.now, self.name, "step.reuse",
                              instance=instance_id, step=step)
            self.system.obs_step_done(instance_id, step, self.simulator.now)
            runtime.executors[step] = self.name
            self._persist(runtime)
            runtime.engine.post_event(token, self.simulator.now,
                                      runtime.fragment.invalidation_round)
            self._after_step_done(instance_id, step, mechanism)
            return

        if plan.compensate:
            members = compiled.schema.compensation_set_of(step)
            if members is not None:
                # The initiator cannot know which downstream members ran
                # (packets only flow forward), so the StepList is the static
                # member list in reverse topological order; each hop agent
                # checks locally whether its step "has been executed" (and
                # is stale) before compensating — exactly the paper's
                # CompensateSet() procedure.
                index = compiled.graph.topo_index
                later = [m for m in members if m != step and index(m) > index(step)]
                later.sort(key=lambda m: -index(m))
                chain = [*later, step]
                runtime.pending_exec[step] = (plan, new_inputs, mechanism)
                self.trace.record(self.simulator.now, self.name, "compensate.set",
                                  instance=instance_id, step=step,
                                  chain=",".join(chain))
                self._forward_compensate_set(
                    runtime, instance_id, chain, step, mechanism,
                    partial_kind=plan.compensation_kind,
                )
                return
            # Not in a dependent set: the step was executed here, so the
            # compensation is local.
            self._compensate_local(runtime, step, plan.compensation_kind or "complete",
                                   plan.compensation_cost, mechanism)

        self._launch_program(instance_id, step, plan.execution_cost, mechanism,
                             new_inputs)

    def _stale_member_times(
        self, runtime: _AgentRuntime, members: frozenset[str]
    ) -> dict[str, float]:
        """Done-times of set members whose completion event is currently
        *invalid* — the rolled back executions the CompensateSet chain must
        undo (a member whose done event is valid was already re-executed or
        reused and keeps its effects)."""
        stale: dict[str, float] = {}
        for member in members:
            occurrence = runtime.engine.events.occurrence(step_done(member))
            if occurrence is not None and not occurrence.valid:
                stale[member] = occurrence.time
        return stale

    def _member_done_times(
        self, runtime: _AgentRuntime, members: frozenset[str]
    ) -> dict[str, float]:
        done_times = {}
        for member in members:
            occurrence = runtime.engine.events.occurrence(step_done(member))
            if occurrence is not None and occurrence.valid:
                done_times[member] = occurrence.time
            else:
                record = runtime.fragment.steps.get(member)
                if record is not None and record.status is StepStatus.DONE:
                    done_times[member] = record.done_at or 0.0
        return done_times

    def _launch_program(
        self,
        instance_id: str,
        step: str,
        cost: float,
        mechanism: Mechanism,
        inputs: dict[str, Any],
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        if step_def.subworkflow is not None:
            self._launch_nested(runtime, instance_id, step, inputs)
            return
        record = runtime.fragment.record(step)
        record.status = StepStatus.RUNNING
        record.agent = self.name
        attempt = record.executions + 1
        epoch = runtime.fragment.recovery_epoch
        runtime.running_exec[step] = epoch
        stale_span = runtime.exec_spans.pop(step, None)
        if stale_span is not None:
            self.system.tracer.end(
                stale_span, self.simulator.now, status="cancelled"
            )
        runtime.exec_spans[step] = self.system.obs_step_dispatched(
            instance_id, step, self.name, self.simulator.now,
            attempt=attempt, epoch=epoch, mechanism=mechanism.value,
        )
        self.trace.record(self.simulator.now, self.name, "step.execute",
                          instance=instance_id, step=step, attempt=attempt)
        delay = cost * self.config.work_time_scale
        self.simulator.schedule(
            delay, self._complete_program, instance_id, step, epoch, attempt,
            mechanism, inputs, cost,
        )

    def _complete_program(
        self,
        instance_id: str,
        step: str,
        epoch: int,
        attempt: int,
        mechanism: Mechanism,
        inputs: dict[str, Any],
        cost: float,
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        fragment = runtime.fragment
        if runtime.running_exec.get(step) != epoch or fragment.recovery_epoch != epoch:
            # Stale completion from before a rollback; the halt already
            # reset the step record and a newer execution may be in flight.
            self.trace.record(self.simulator.now, self.name, "step.stale_result",
                              instance=instance_id, step=step)
            return
        runtime.running_exec.pop(step, None)
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        program = self.system.programs.get(step_def.program, step_def.outputs)
        ctx = ExecutionContext(
            schema_name=compiled.name,
            instance_id=instance_id,
            step=step,
            attempt=attempt,
            now=self.simulator.now,
            node=self.name,
            rng=self.system.rng.stream(f"prog:{instance_id}:{step}"),
        )
        result = program.execute(inputs, ctx)
        self.network.metrics.record_work(self.name, "execute", cost)
        runtime.executors[step] = self.name
        exec_span = runtime.exec_spans.pop(step, None)
        if result.success:
            token = record_execution_success(
                fragment, step_def, inputs, result.outputs, self.simulator.now,
                self.name,
            )
            self.trace.record(self.simulator.now, self.name, "step.done",
                              instance=instance_id, step=step)
            if exec_span is not None:
                self.system.obs_step_finished(
                    exec_span, self.simulator.now, status="done"
                )
            self.system.obs_step_done(instance_id, step, self.simulator.now)
            self._persist(runtime)
            runtime.engine.post_event(token, self.simulator.now,
                                      runtime.fragment.invalidation_round)
            self._after_step_done(instance_id, step, mechanism)
        else:
            token = record_execution_failure(
                fragment, step_def, inputs, self.simulator.now, self.name
            )
            self.trace.record(self.simulator.now, self.name, "step.fail",
                              instance=instance_id, step=step,
                              error=result.error or "-")
            if exec_span is not None:
                self.system.obs_step_finished(
                    exec_span, self.simulator.now, status="failed",
                    error=result.error or "-",
                )
            self._persist(runtime)
            runtime.engine.post_event(token, self.simulator.now,
                                      runtime.fragment.invalidation_round)
            self._handle_failure(instance_id, step)

    # ------------------------------------------------------------------ navigation

    def _after_step_done(
        self, instance_id: str, step: str, mechanism: Mechanism
    ) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        compiled = runtime.compiled
        self._coord_on_step_done(runtime, instance_id, step)
        if step in compiled.terminal_steps and not self._loop_continues(runtime, step):
            self._report_completion(runtime, instance_id, step, mechanism)
            return
        self._navigate(runtime, instance_id, step, mechanism)

    def _navigate(
        self,
        runtime: _AgentRuntime,
        instance_id: str,
        step: str,
        mechanism: Mechanism,
        only_to: str | None = None,
    ) -> None:
        compiled = runtime.compiled
        runtime.forwarded.add(step)
        for successor in compiled.graph.successors(step):
            eligible = self.agdb.eligible_agents(compiled.name, successor)
            if (
                self.config.successor_selection == "load"
                and len(eligible) > 1
                and only_to is None
            ):
                # Paper's two-phase selection: probe eligible successors
                # with StateInformation(), dispatch to the least loaded.
                self._probe_then_dispatch(runtime, instance_id, successor,
                                          mechanism, eligible)
                continue
            assigned = self._elect(compiled, instance_id, successor)
            self._send_step_packets(runtime, instance_id, successor, mechanism,
                                    eligible, assigned, only_to)

    def _send_step_packets(
        self,
        runtime: _AgentRuntime,
        instance_id: str,
        successor: str,
        mechanism: Mechanism,
        eligible: tuple[str, ...],
        assigned: str,
        only_to: str | None = None,
    ) -> None:
        packet = self._build_packet(runtime, instance_id, successor, mechanism,
                                    assigned)
        for agent in eligible:
            if only_to is not None and agent != only_to:
                continue
            if agent == self.name:
                self._ingest_packet(packet)
            else:
                self.send(agent, WI.STEP_EXECUTE.value, packet.to_payload(),
                          mechanism)

    # -- load-based successor selection (config.successor_selection="load") --

    def _local_executing_count(self) -> int:
        return sum(
            1
            for runtime in self.runtimes.values()
            for record in runtime.fragment.steps.values()
            if record.status is StepStatus.RUNNING and record.agent == self.name
        )

    def _probe_then_dispatch(
        self,
        runtime: _AgentRuntime,
        instance_id: str,
        successor: str,
        mechanism: Mechanism,
        eligible: tuple[str, ...],
    ) -> None:
        probe_id = next(self._probe_ids)
        others = [agent for agent in eligible if agent != self.name]
        loads = {}
        if self.name in eligible:
            loads[self.name] = self._local_executing_count()
        self._load_probes[probe_id] = {
            "instance_id": instance_id,
            "successor": successor,
            "mechanism": mechanism,
            "eligible": eligible,
            "waiting": set(others),
            "loads": loads,
        }
        for agent in others:
            self.send(agent, WI.STATE_INFORMATION.value,
                      {"probe_id": probe_id, "mechanism": mechanism.value},
                      mechanism)
        if not others:
            self._finish_load_probe(probe_id)

    def _on_state_information_reply(self, message: Message) -> None:
        probe_id = message.payload.get("probe_id")
        pending = self._load_probes.get(probe_id)
        if pending is None:
            return
        pending["waiting"].discard(message.src)
        pending["loads"][message.src] = message.payload["load"]
        if not pending["waiting"]:
            self._finish_load_probe(probe_id)

    def _finish_load_probe(self, probe_id: int) -> None:
        pending = self._load_probes.pop(probe_id, None)
        if pending is None:
            return
        runtime = self.runtimes.get(pending["instance_id"])
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        loads = pending["loads"]
        assigned = min(loads, key=lambda agent: (loads[agent], agent))
        self._send_step_packets(
            runtime, pending["instance_id"], pending["successor"],
            pending["mechanism"], pending["eligible"], assigned,
        )

    def _build_packet(
        self,
        runtime: _AgentRuntime,
        instance_id: str,
        target_step: str,
        mechanism: Mechanism,
        assigned: str,
    ) -> WorkflowPacket:
        fragment = runtime.fragment
        return WorkflowPacket(
            schema_name=fragment.schema_name,
            instance_id=instance_id,
            action="execute",
            target_step=target_step,
            data=dict(fragment.data),
            events=runtime.engine.events.export_versioned(),
            invalidations=dict(runtime.known_invalidations),
            recovery_epoch=fragment.recovery_epoch,
            recovery_origin=None,
            mechanism=mechanism,
            ro_info=tuple(sorted(runtime.ro_info)),
            executors=dict(runtime.executors),
            assigned_agent=assigned,
            parent_link=runtime.parent_link,
        )

    def _loop_continues(self, runtime: _AgentRuntime, step: str) -> bool:
        for template in runtime.compiled.loop_templates_for(step):
            condition = runtime.compiled.condition_for(template.rule_id)
            if condition is None:
                return True
            try:
                if condition.evaluate(runtime.fragment.env()):
                    return True
            except Exception:
                continue
        return False

    def _fire_loop(self, instance_id: str, rule: RuleInstance) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        # Only the agent that executed the loop source navigates the loop.
        if runtime.executors.get(rule.step) != self.name:
            return
        runtime.loop_fires[rule.rule_id] += 1
        if runtime.loop_fires[rule.rule_id] > self.config.max_loop_iterations:
            raise SimulationError(
                f"loop {rule.rule_id} exceeded {self.config.max_loop_iterations} "
                f"iterations in {instance_id}"
            )
        body = rule.loop_body
        now = self.simulator.now
        self.trace.record(now, self.name, "loop.iterate",
                          instance=instance_id, rule=rule.rule_id,
                          iteration=runtime.loop_fires[rule.rule_id])
        runtime.fragment.invalidation_round += 1
        round = runtime.fragment.invalidation_round
        tokens = invalidation_tokens(body)
        for token in tokens:
            prev = runtime.known_invalidations.get(token, 0)
            runtime.known_invalidations[token] = max(prev, round)
        runtime.engine.invalidate_events(tokens)
        runtime.engine.reset_rules_for_steps(body)
        for member in body:
            record = runtime.fragment.steps.get(member)
            if record is not None and member in runtime.hosted:
                record.status = StepStatus.NOT_STARTED
        target = rule.loop_target
        assert target is not None
        compiled = runtime.compiled
        eligible = self.agdb.eligible_agents(compiled.name, target)
        assigned = self._elect(compiled, instance_id, target)
        packet = self._build_packet(runtime, instance_id, target,
                                    Mechanism.NORMAL, assigned)
        # Loop re-entry: the target's trigger events (predecessors outside
        # the body) are still valid and travel inside the packet.
        for agent in eligible:
            if agent == self.name:
                self._ingest_packet(packet)
            else:
                self.send(agent, WI.STEP_EXECUTE.value, packet.to_payload(),
                          Mechanism.NORMAL)
        runtime.engine.reevaluate()

    # ------------------------------------------------------------------ commit protocol

    def _report_completion(
        self,
        runtime: _AgentRuntime,
        instance_id: str,
        terminal: str,
        mechanism: Mechanism,
    ) -> None:
        compiled = runtime.compiled
        coordination_agent = self._coordination_agent_of(compiled)
        done_times = {
            s: r.done_at or 0.0
            for s, r in runtime.fragment.steps.items()
            if r.status is StepStatus.DONE
        }
        for token, time in runtime.engine.events.export().items():
            if token.endswith(".D") and not token.startswith(("WF.", "EXT.")):
                done_times.setdefault(token[:-2], time)
        payload = {
            "schema_name": compiled.name,
            "instance_id": instance_id,
            "terminal": terminal,
            "epoch": runtime.fragment.recovery_epoch,
            "origin_history": dict(runtime.origin_history),
            "executors": dict(runtime.executors),
            "done_times": done_times,
            "data": dict(runtime.fragment.data),
        }
        if coordination_agent == self.name:
            self._apply_completion(payload)
        else:
            self.send(coordination_agent, WI.STEP_COMPLETED.value, payload,
                      Mechanism.NORMAL)

    def _on_step_completed(self, message: Message) -> None:
        self._apply_completion(message.payload)

    def _apply_completion(self, payload: Mapping[str, Any]) -> None:
        instance_id = payload["instance_id"]
        tracker = self.trackers.get(instance_id)
        if tracker is None or tracker.finished:
            return
        compiled = self.system.compiled(payload["schema_name"])
        epoch = payload["epoch"]
        terminal = payload["terminal"]
        tracker.origin_history.update(
            {int(e): o for e, o in payload.get("origin_history", {}).items()}
        )
        tracker.epoch = max(tracker.epoch, epoch)

        def invalidated(t: str, report_epoch: int) -> bool:
            """Was a report at ``report_epoch`` undone by a later rollback?"""
            return any(
                e > report_epoch and t in compiled.affected_terminals(o)
                for e, o in tracker.origin_history.items()
            )

        if not invalidated(terminal, epoch):
            tracker.reported[terminal] = max(epoch, tracker.reported.get(terminal, 0))
        tracker.reported = {
            t: e for t, e in tracker.reported.items() if not invalidated(t, e)
        }
        tracker.executors.update(payload["executors"])
        tracker.done_times.update(payload["done_times"])
        tracker.data.update(payload["data"])
        self.trace.record(self.simulator.now, self.name, "terminal.reported",
                          instance=instance_id, terminal=terminal, epoch=epoch)
        if compiled.commit_ready(set(tracker.reported)):
            self._commit(instance_id, compiled, tracker)

    def _commit(
        self, instance_id: str, compiled: CompiledSchema, tracker: _CommitTracker
    ) -> None:
        tracker.finished = True
        self.agdb.set_summary(instance_id, InstanceStatus.COMMITTED)
        runtime = self.runtimes.get(instance_id)
        if runtime is not None:
            runtime.fragment.status = InstanceStatus.COMMITTED
            self._persist(runtime)
        outputs: dict[str, Any] = {}
        for name, ref in compiled.schema.outputs.items():
            if ref in tracker.data:
                outputs[name] = tracker.data[ref]
        self.system._record_outcome(
            instance_id, compiled.name, InstanceStatus.COMMITTED, outputs,
            self.simulator.now,
        )
        self.trace.record(self.simulator.now, self.name, "workflow.commit",
                          instance=instance_id)
        self._withdraw_coordination(instance_id, runtime, aborted=False)
        if tracker.parent_link is not None:
            parent_id, parent_step = tracker.parent_link
            parent_compiled = None
            for schema in self.system.schemas.values():
                if parent_step in schema.schema.steps and schema.schema.steps[
                    parent_step
                ].subworkflow == compiled.name:
                    parent_compiled = schema
                    break
            target = None
            if parent_compiled is not None:
                target = elect_executor(
                    self.agdb.eligible_agents(parent_compiled.name, parent_step),
                    parent_compiled.name, parent_id, parent_step,
                    is_up=self.network.is_up,
                )
            payload = {
                "parent_id": parent_id,
                "parent_step": parent_step,
                "outputs": outputs,
            }
            if target is None or target == self.name:
                self._apply_nested_done(payload)
            else:
                self.send(target, VERB_NESTED_DONE, payload, Mechanism.NORMAL)
        if self.config.purge_interval is not None:
            self._purge_pending.append(instance_id)
            if not self._purge_scheduled:
                self._purge_scheduled = True
                self.simulator.schedule(
                    self.config.purge_interval, self._broadcast_purge
                )

    def _broadcast_purge(self) -> None:
        self._purge_scheduled = False
        batch, self._purge_pending = self._purge_pending, []
        if not batch:
            return
        payload = {"instance_ids": batch}
        for agent in self.system.agent_names():
            if agent == self.name:
                self.agdb.purge_instances(batch)
                for instance_id in batch:
                    self.runtimes.pop(instance_id, None)
            else:
                self.send(agent, VERB_PURGE, payload, Mechanism.NORMAL)
        self.trace.record(self.simulator.now, self.name, "purge.broadcast",
                          count=len(batch))

    def _on_purge(self, message: Message) -> None:
        ids = list(message.payload["instance_ids"])
        self.agdb.purge_instances(ids)
        for instance_id in ids:
            self.runtimes.pop(instance_id, None)

    # ------------------------------------------------------------------ nested workflows

    def _launch_nested(
        self, runtime: _AgentRuntime, instance_id: str, step: str,
        inputs: dict[str, Any],
    ) -> None:
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        child_compiled = self.system.compiled(step_def.subworkflow)
        record = runtime.fragment.record(step)
        record.status = StepStatus.RUNNING
        record.agent = self.name
        record.last_inputs = dict(inputs)
        child_inputs = dict(zip(child_compiled.schema.inputs, inputs.values()))
        child_id = f"{instance_id}.{step}#{record.executions + 1}"
        coordination_agent = self._coordination_agent_of(child_compiled)
        self.trace.record(self.simulator.now, self.name, "nested.start",
                          instance=instance_id, step=step, child=child_id)
        payload = {
            "schema_name": child_compiled.name,
            "instance_id": child_id,
            "inputs": child_inputs,
            "parent_link": [instance_id, step],
        }
        if coordination_agent == self.name:
            self.workflow_start(child_compiled.name, child_id, child_inputs,
                                parent_link=(instance_id, step))
        else:
            self.send(coordination_agent, WI.WORKFLOW_START.value, payload,
                      Mechanism.NORMAL)

    def _on_nested_done(self, message: Message) -> None:
        self._apply_nested_done(message.payload)

    def _apply_nested_done(self, payload: Mapping[str, Any]) -> None:
        parent_id = payload["parent_id"]
        parent_step = payload["parent_step"]
        runtime = self.runtimes.get(parent_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        step_def = runtime.compiled.schema.steps[parent_step]
        child_outputs = payload["outputs"]
        missing = [o for o in step_def.outputs if o not in child_outputs]
        if missing:
            raise SchemaError(
                f"nested workflow for {parent_id}.{parent_step} missing outputs "
                f"{missing}"
            )
        record = runtime.fragment.record(parent_step)
        inputs = record.last_inputs
        outputs = {o: child_outputs[o] for o in step_def.outputs}
        runtime.executors[parent_step] = self.name
        token = record_execution_success(
            runtime.fragment, step_def, inputs, outputs, self.simulator.now,
            self.name,
        )
        self._persist(runtime)
        runtime.engine.post_event(token, self.simulator.now,
                                  runtime.fragment.invalidation_round)
        self._after_step_done(parent_id, parent_step, Mechanism.NORMAL)

    # ------------------------------------------------------------------ failure handling

    def _handle_failure(self, instance_id: str, failed_step: str) -> None:
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        compiled = runtime.compiled
        origin = compiled.schema.rollback_origin(failed_step)
        if origin is None:
            # Unhandled failure: tell the coordination agent to abort.
            coordination_agent = self._coordination_agent_of(compiled)
            payload = {
                "schema_name": compiled.name,
                "instance_id": instance_id,
                "failed_step": failed_step,
                "executors": dict(runtime.executors),
                "done_times": self._member_done_times(
                    runtime, frozenset(compiled.schema.steps)
                ),
            }
            if coordination_agent == self.name:
                self._apply_unhandled_failure(payload)
            else:
                self.send(coordination_agent, VERB_UNHANDLED_FAILURE, payload,
                          Mechanism.FAILURE)
            return
        new_epoch = runtime.fragment.recovery_epoch + 1
        target = runtime.executors.get(origin) or self._elect(
            compiled, instance_id, origin
        )
        payload = {
            "schema_name": compiled.name,
            "instance_id": instance_id,
            "origin": origin,
            "failed_step": failed_step,
            "epoch": new_epoch,
            "mechanism": Mechanism.FAILURE.value,
        }
        self.trace.record(self.simulator.now, self.name, "rollback.request",
                          instance=instance_id, origin=origin, target=target)
        if target == self.name:
            self._apply_workflow_rollback(payload)
        else:
            self.send(target, WI.WORKFLOW_ROLLBACK.value, payload, Mechanism.FAILURE)

    def _on_workflow_rollback(self, message: Message) -> None:
        self._apply_workflow_rollback(message.payload)

    def _apply_workflow_rollback(self, payload: Mapping[str, Any]) -> None:
        instance_id = payload["instance_id"]
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            runtime = self._runtime(payload["schema_name"], instance_id)
        fragment = runtime.fragment
        if fragment.status is not InstanceStatus.RUNNING:
            return
        origin = payload["origin"]
        epoch = payload["epoch"]
        mechanism = Mechanism(payload.get("mechanism", Mechanism.FAILURE.value))
        if epoch <= fragment.recovery_epoch:
            return  # already handled (duplicate rollback request)
        self.trace.record(self.simulator.now, self.name, "rollback",
                          instance=instance_id, origin=origin, epoch=epoch)
        self.system.obs_recovery_started(
            instance_id, self.name, self.simulator.now, origin=origin,
            epoch=epoch, mechanism=mechanism.value,
        )
        fragment.recovery_epoch = epoch
        runtime.recovery_mechanism = mechanism
        runtime.origin_history[epoch] = origin
        self._halt_from(runtime, instance_id, origin, epoch, mechanism,
                        include_origin_agent=False)
        # (the halt bumped fragment.invalidation_round)
        # Rollback-dependency triggers (single hop: a rollback induced by
        # a dependency does not re-trigger dependencies, avoiding ping-pong
        # between mutually dependent instances).
        recovery = RecoveryTokens(runtime.compiled, origin)
        rd_allowed = not payload.get("from_rd", False)
        for spec in self.spec_index.rd_triggers(fragment.schema_name) if rd_allowed else []:
            if spec.trigger_step_a not in recovery.steps:
                continue
            authority = self.system.authority_agent_for(spec)
            trigger_payload = {
                "op": "rd_trigger",
                "spec": spec.name,
                "instance_id": instance_id,
                "key": SpecIndex.conflict_key_value(spec, fragment),
            }
            if authority == self.name:
                self._apply_rd_trigger(trigger_payload)
            else:
                self.send(authority, WI.ADD_RULE.value, trigger_payload,
                          Mechanism.COORDINATION)
        # Re-execution: the origin's rules were re-armed by the local halt;
        # its trigger events (outside the invalidation set) are still valid.
        runtime.engine.reevaluate()

    def _halt_from(
        self,
        runtime: _AgentRuntime,
        instance_id: str,
        origin: str,
        epoch: int,
        mechanism: Mechanism,
        include_origin_agent: bool,
    ) -> None:
        """Apply the local halt/invalidation and probe successor agents."""
        compiled = runtime.compiled
        fragment = runtime.fragment
        recovery = RecoveryTokens(compiled, origin)
        fragment.invalidation_round += 1
        round = fragment.invalidation_round
        for token in recovery.tokens:
            prev = runtime.known_invalidations.get(token, 0)
            runtime.known_invalidations[token] = max(prev, round)
        runtime.engine.invalidate_events(recovery.tokens)
        runtime.engine.reset_rules_for_steps(recovery.steps)
        for step in recovery.steps:
            record = fragment.steps.get(step)
            if record is not None and record.status is StepStatus.RUNNING:
                record.status = StepStatus.NOT_STARTED
        self._persist(runtime)
        # Probe the agents responsible for the successor steps.  The probe
        # recurses at each agent that already forwarded packets.
        payload = {
            "schema_name": compiled.name,
            "instance_id": instance_id,
            "origin": origin,
            "epoch": epoch,
            "mechanism": mechanism.value,
            "invalidations": {t: round for t in recovery.tokens},
        }
        targets: set[str] = set()
        for successor in compiled.graph.successors(origin):
            for agent in self.agdb.eligible_agents(compiled.name, successor):
                if agent != self.name:
                    targets.add(agent)
        for agent in sorted(targets):
            self.send(agent, WI.HALT_THREAD.value, payload, mechanism)

    def _on_halt_thread(self, message: Message) -> None:
        payload = message.payload
        instance_id = payload["instance_id"]
        if self.agdb.was_purged(instance_id):
            return
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            if not self.agdb.has_fragment(instance_id):
                return  # never saw this instance; nothing to halt
            runtime = self._runtime(payload["schema_name"], instance_id)
        fragment = runtime.fragment
        epoch = payload["epoch"]
        if epoch <= fragment.recovery_epoch:
            return  # this halt round already processed here
        fragment.recovery_epoch = epoch
        mechanism = Mechanism(payload.get("mechanism", Mechanism.FAILURE.value))
        if mechanism in (Mechanism.FAILURE, Mechanism.INPUT_CHANGE):
            runtime.recovery_mechanism = mechanism
        origin = payload["origin"]
        runtime.origin_history[epoch] = origin
        compiled = runtime.compiled
        recovery = RecoveryTokens(compiled, origin)
        self.trace.record(self.simulator.now, self.name, "halt.thread",
                          instance=instance_id, origin=origin, epoch=epoch)
        runtime.engine.apply_invalidations(dict(payload["invalidations"]))
        runtime.engine.reset_rules_for_steps(recovery.steps)
        for token, round in payload["invalidations"].items():
            prev = runtime.known_invalidations.get(token, 0)
            runtime.known_invalidations[token] = max(prev, int(round))
        if payload["invalidations"]:
            fragment.invalidation_round = max(
                fragment.invalidation_round, *payload["invalidations"].values()
            )
        for step in recovery.steps:
            record = fragment.steps.get(step)
            if record is not None and record.status is StepStatus.RUNNING:
                record.status = StepStatus.NOT_STARTED
        self._persist(runtime)
        # Propagate to successors of steps this agent executed and forwarded.
        forwarded_affected = runtime.forwarded & recovery.steps
        targets: set[str] = set()
        for step in forwarded_affected:
            for successor in compiled.graph.successors(step):
                for agent in self.agdb.eligible_agents(compiled.name, successor):
                    if agent != self.name:
                        targets.add(agent)
        runtime.forwarded -= recovery.steps
        for agent in sorted(targets):
            self.send(agent, WI.HALT_THREAD.value, dict(payload), mechanism)

    def _on_unhandled_failure(self, message: Message) -> None:
        self._apply_unhandled_failure(message.payload)

    def _apply_unhandled_failure(self, payload: Mapping[str, Any]) -> None:
        """Coordination agent aborts after an unhandled step failure,
        compensating every reported executed step in reverse order."""
        instance_id = payload["instance_id"]
        tracker = self.trackers.get(instance_id)
        if tracker is None or tracker.finished:
            return
        runtime = self.runtimes.get(instance_id)
        compiled = self.system.compiled(payload["schema_name"])
        schema = compiled.schema
        tracker.executors.update(payload["executors"])
        done_times = dict(payload["done_times"])
        ordered = [
            step
            for step in sorted(done_times, key=lambda s: -done_times[s])
            if schema.steps[step].compensable
        ]
        self.trace.record(self.simulator.now, self.name, "failure.unhandled",
                          instance=instance_id, step=payload["failed_step"])
        # Halt every thread first: the probes invalidate all completions, and
        # the compensation chain carries those invalidations so hop agents
        # see the staleness regardless of message arrival order.
        invalidations: dict[str, int] = {}
        if runtime is not None:
            self.system.obs_recovery_started(
                instance_id, self.name, self.simulator.now, origin=None,
                epoch=runtime.fragment.recovery_epoch + 1, mechanism="failure",
            )
            epoch = runtime.fragment.recovery_epoch + 1
            runtime.fragment.recovery_epoch = epoch
            self._halt_from(runtime, instance_id, compiled.start_step, epoch,
                            Mechanism.FAILURE, include_origin_agent=True)
            invalidations = dict(runtime.known_invalidations)
        if ordered:
            # Saga-style default: compensate everything executed in strict
            # reverse execution order via a CompensateThread chain.
            self._process_compensate_thread({
                "schema_name": schema.name,
                "instance_id": instance_id,
                "step_list": ordered,
                "mechanism": Mechanism.FAILURE.value,
                "executors": dict(tracker.executors),
                "invalidations": invalidations,
            })
        tracker.finished = True
        self.agdb.set_summary(instance_id, InstanceStatus.ABORTED)
        if runtime is not None:
            runtime.fragment.status = InstanceStatus.ABORTED
            self._persist(runtime)
        self._withdraw_coordination(instance_id, runtime, aborted=True)
        self.system._record_outcome(
            instance_id, schema.name, InstanceStatus.ABORTED, {}, self.simulator.now
        )

    # ------------------------------------------------------------------ compensation WIs

    def _on_step_compensate(self, message: Message) -> None:
        self._on_step_compensate_local(message.payload, message.mechanism)

    def _on_step_compensate_local(
        self, payload: Mapping[str, Any], mechanism: Mechanism
    ) -> None:
        """StepCompensate WI: compensate the step if this agent executed it."""
        instance_id = payload["instance_id"]
        if not self.agdb.has_fragment(instance_id):
            return
        runtime = self._runtime(payload["schema_name"], instance_id)
        step = payload["step"]
        record = runtime.fragment.steps.get(step)
        if record is None or record.status is not StepStatus.DONE:
            return
        if record.agent != self.name:
            return
        step_def = runtime.compiled.schema.steps[step]
        self._compensate_local(
            runtime, step, payload.get("kind", "complete"),
            step_def.effective_compensation_cost, mechanism,
        )

    def _compensate_local(
        self,
        runtime: _AgentRuntime,
        step: str,
        kind: str,
        cost: float,
        mechanism: Mechanism,
    ) -> None:
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        record = runtime.fragment.record(step)
        program = self.system.programs.get(step_def.program, step_def.outputs)
        ctx = ExecutionContext(
            schema_name=compiled.name,
            instance_id=runtime.fragment.instance_id,
            step=step,
            attempt=record.executions,
            now=self.simulator.now,
            node=self.name,
        )
        program.compensate(record, ctx)
        self.network.metrics.record_work(self.name, "compensate", cost)
        token = record_compensation(runtime.fragment, step_def, kind)
        runtime.engine.post_event(token, self.simulator.now,
                                  runtime.fragment.invalidation_round)
        self._persist(runtime)
        self.trace.record(self.simulator.now, self.name, "step.compensated",
                          instance=runtime.fragment.instance_id, step=step,
                          comp=kind)

    def _forward_compensate_set(
        self,
        runtime: _AgentRuntime,
        instance_id: str,
        chain: list[str],
        origin_step: str,
        mechanism: Mechanism,
        partial_kind: str | None,
    ) -> None:
        """Send (or locally process) the next hop of a CompensateSet chain."""
        payload = {
            "schema_name": runtime.fragment.schema_name,
            "instance_id": instance_id,
            "step_list": list(chain),
            "origin_step": origin_step,
            "initiator": self.name,
            "mechanism": mechanism.value,
            "partial_kind": partial_kind,
            "executors": dict(runtime.executors),
            # Hop agents apply these before deciding, so a chain racing
            # ahead of the HaltThread probes still sees the stale state.
            "invalidations": dict(runtime.known_invalidations),
        }
        self._process_compensate_set(payload)

    def _on_compensate_set(self, message: Message) -> None:
        self._process_compensate_set(dict(message.payload))

    def _process_compensate_set(self, payload: dict[str, Any]) -> None:
        instance_id = payload["instance_id"]
        step_list: list[str] = list(payload["step_list"])
        origin_step = payload["origin_step"]
        mechanism = Mechanism(payload["mechanism"])
        if not step_list:
            return
        step = step_list[0]
        executors = dict(payload["executors"])
        target = executors.get(step)
        if target is None:
            compiled = self.system.compiled(payload["schema_name"])
            target = self._elect(compiled, instance_id, step)
        if target != self.name:
            payload["step_list"] = step_list
            self.send(target, WI.COMPENSATE_SET.value, payload, mechanism)
            return
        # This agent is responsible for the head of the list: compensate it
        # if it was executed here *and* its completion is stale (a valid
        # done event means the step was already re-established and keeps
        # its effects — e.g. an OCR reuse).
        runtime = self._runtime(payload["schema_name"], instance_id)
        invalidations = dict(payload.get("invalidations", {}))
        if invalidations:
            runtime.engine.apply_invalidations(invalidations)
            for token, round in invalidations.items():
                previous = runtime.known_invalidations.get(token, 0)
                runtime.known_invalidations[token] = max(previous, int(round))
            runtime.fragment.invalidation_round = max(
                runtime.fragment.invalidation_round, *invalidations.values()
            )
        record = runtime.fragment.steps.get(step)
        occurrence = runtime.engine.events.occurrence(step_done(step))
        stale = occurrence is None or not occurrence.valid
        if record is not None and record.status is StepStatus.DONE and stale:
            step_def = runtime.compiled.schema.steps[step]
            is_origin = step == origin_step
            kind = (
                payload.get("partial_kind") or "complete" if is_origin else "complete"
            )
            cost = step_def.effective_compensation_cost
            if kind == "partial":
                policy = runtime.compiled.schema.cr_policies.get(step, DEFAULT_POLICY)
                cost *= policy.incremental_fraction
            self._compensate_local(runtime, step, kind, cost, mechanism)
        step_list.pop(0)
        if step_list:
            payload["step_list"] = step_list
            self._process_compensate_set(payload)
            return
        # Chain finished.  If the origin step's agent stashed a pending
        # re-execution, resume it (the origin is the last chain element, so
        # we are at its agent — or the chain ended elsewhere and the
        # initiator resumes via this final hop).
        initiator = payload["initiator"]
        if initiator != self.name:
            self.send(initiator, WI.COMPENSATE_SET.value,
                      {**payload, "step_list": []}, mechanism)
            return
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        pending = runtime.pending_exec.pop(origin_step, None)
        if pending is not None:
            plan, inputs, exec_mechanism = pending
            self._launch_program(instance_id, origin_step, plan.execution_cost,
                                 exec_mechanism, inputs)

    def _start_compensate_thread(
        self,
        runtime: _AgentRuntime,
        instance_id: str,
        steps: list[str],
        mechanism: Mechanism,
    ) -> None:
        """CompensateThread WI chain over an abandoned if-then-else branch."""
        payload = {
            "schema_name": runtime.fragment.schema_name,
            "instance_id": instance_id,
            "step_list": list(steps),
            "mechanism": mechanism.value,
            "executors": dict(runtime.executors),
            "invalidations": dict(runtime.known_invalidations),
        }
        self.trace.record(self.simulator.now, self.name, "compensate.thread",
                          instance=instance_id, steps=",".join(steps))
        self._process_compensate_thread(payload)

    def _on_compensate_thread(self, message: Message) -> None:
        self._process_compensate_thread(dict(message.payload))

    def _process_compensate_thread(self, payload: dict[str, Any]) -> None:
        step_list: list[str] = list(payload["step_list"])
        if not step_list:
            return
        instance_id = payload["instance_id"]
        mechanism = Mechanism(payload["mechanism"])
        step = step_list[0]
        executors = dict(payload["executors"])
        target = executors.get(step)
        if target is None:
            compiled = self.system.compiled(payload["schema_name"])
            target = self._elect(compiled, instance_id, step)
        if target != self.name:
            self.send(target, WI.COMPENSATE_THREAD.value, payload, mechanism)
            return
        runtime = self._runtime(payload["schema_name"], instance_id)
        invalidations = dict(payload.get("invalidations", {}))
        if invalidations:
            runtime.engine.apply_invalidations(invalidations)
            for token, round in invalidations.items():
                previous = runtime.known_invalidations.get(token, 0)
                runtime.known_invalidations[token] = max(previous, int(round))
        record = runtime.fragment.steps.get(step)
        occurrence = runtime.engine.events.occurrence(step_done(step))
        stale = occurrence is None or not occurrence.valid
        if record is not None and record.status is StepStatus.DONE and stale:
            step_def = runtime.compiled.schema.steps[step]
            self._compensate_local(
                runtime, step, "complete", step_def.effective_compensation_cost,
                mechanism,
            )
        step_list.pop(0)
        if step_list:
            payload["step_list"] = step_list
            self._process_compensate_thread(payload)

    # ------------------------------------------------------------------ inputs changed

    def _on_inputs_changed(self, message: Message) -> None:
        self._on_inputs_changed_local(message.payload)

    def _on_inputs_changed_local(self, payload: Mapping[str, Any]) -> None:
        """InputsChanged WI at the origin step's agent: apply the new input
        values, then run the standard rollback machinery from the origin."""
        instance_id = payload["instance_id"]
        runtime = self._runtime(payload["schema_name"], instance_id)
        changes = dict(payload["changes"])
        overrides = {f"WF.{name}": value for name, value in changes.items()}
        runtime.input_overrides.update(overrides)
        runtime.fragment.merge_data(overrides)
        for name, value in changes.items():
            if name in runtime.fragment.inputs:
                runtime.fragment.inputs[name] = value
        rollback_payload = {
            "schema_name": payload["schema_name"],
            "instance_id": instance_id,
            "origin": payload["origin"],
            "failed_step": None,
            "epoch": payload["epoch"],
            "mechanism": Mechanism.INPUT_CHANGE.value,
        }
        self._apply_workflow_rollback(rollback_payload)

    # ------------------------------------------------------------------ agent failure WIs

    def _on_step_status(self, message: Message) -> None:
        """StepStatus WI: report what this agent knows about a step."""
        payload = message.payload
        instance_id = payload["instance_id"]
        step = payload["step"]
        status = "unknown"
        if self.agdb.has_fragment(instance_id):
            runtime = self._runtime(payload["schema_name"], instance_id)
            record = runtime.fragment.steps.get(step)
            if record is None:
                status = "not_executed"
            elif record.status is StepStatus.RUNNING:
                status = "executing" if record.agent == self.name else "unknown"
            elif record.status is StepStatus.DONE and record.agent == self.name:
                status = "done"
                # Repair: re-send the packet flow for the requester.
                self._navigate(runtime, instance_id, step,
                               Mechanism.FAILURE, only_to=message.src)
            else:
                status = "not_executed"
        self.send(
            message.src,
            VERB_STEP_STATUS_REPLY,
            {"instance_id": instance_id, "step": step, "status": status},
            Mechanism.FAILURE,
        )

    def _on_step_status_reply(self, message: Message) -> None:
        # Replies are informational; the packet resend (when status=done)
        # repairs the flow.  Recorded for tests/observability.
        self.trace.record(self.simulator.now, self.name, "step.status_reply",
                          instance=message.payload["instance_id"],
                          step=message.payload["step"],
                          status=message.payload["status"])

    def poll_step_status(self, schema_name: str, instance_id: str, step: str) -> None:
        """Poll the eligible agents of ``step`` (paper's predecessor-failure
        handling for pending rules that time out)."""
        for agent in self.agdb.eligible_agents(schema_name, step):
            if agent == self.name:
                continue
            self.send(agent, WI.STEP_STATUS.value,
                      {"schema_name": schema_name, "instance_id": instance_id,
                       "step": step}, Mechanism.FAILURE)

    # ------------------------------------------------------------------ status probes

    def workflow_status_probe(self, instance_id: str) -> int:
        """Launch the paper's probe chain to locate a workflow's current steps.

        "To determine which step of a workflow is being performed at a
        given instant, a chain of probe messages has to be sent starting
        from the agent responsible for performing the first step until the
        message reaches the agent that is performing the current step."

        Returns the probe id; reports accumulate in ``probe_reports``.
        """
        probe_id = next(self._probe_ids)
        self._probe_reports.setdefault(instance_id, [])
        self._apply_status_probe({
            "instance_id": instance_id,
            "probe_id": probe_id,
            "origin": self.name,
        })
        return probe_id

    def probe_reports(self, instance_id: str) -> list[dict]:
        """Reports received so far for probes of ``instance_id``."""
        return list(self._probe_reports.get(instance_id, []))

    def _on_status_probe(self, message: Message) -> None:
        self._apply_status_probe(dict(message.payload))

    def _apply_status_probe(self, payload: dict[str, Any]) -> None:
        instance_id = payload["instance_id"]
        probe_key = (instance_id, payload["probe_id"])
        if probe_key in self._seen_status_probes:
            return
        self._seen_status_probes.add(probe_key)
        runtime = self.runtimes.get(instance_id)
        if runtime is None:
            return
        running = sorted(
            record.step
            for record in runtime.fragment.steps.values()
            if record.status is StepStatus.RUNNING and record.agent == self.name
        )
        waiting = sorted(
            rule.step
            for rule in runtime.engine.pending_rules()
            if rule.kind == "execute" and rule.step in runtime.hosted
        )
        if running or waiting:
            report = {
                "instance_id": instance_id,
                "probe_id": payload["probe_id"],
                "agent": self.name,
                "running": running,
                "waiting": waiting,
            }
            if payload["origin"] == self.name:
                self._on_status_probe_report_payload(report)
            else:
                self.send(payload["origin"], VERB_STATUS_PROBE_REPORT, report,
                          Mechanism.NORMAL)
        # Chain onward through the steps this agent executed and forwarded.
        compiled = runtime.compiled
        targets: set[str] = set()
        for step in runtime.forwarded:
            for successor in compiled.graph.successors(step):
                for agent in self.agdb.eligible_agents(compiled.name, successor):
                    if agent != self.name:
                        targets.add(agent)
        for agent in sorted(targets):
            self.send(agent, VERB_STATUS_PROBE, dict(payload), Mechanism.NORMAL)

    def _on_status_probe_report(self, message: Message) -> None:
        self._on_status_probe_report_payload(dict(message.payload))

    def _on_status_probe_report_payload(self, report: dict[str, Any]) -> None:
        self._probe_reports.setdefault(report["instance_id"], []).append(report)
        self.trace.record(self.simulator.now, self.name, "status.probe_report",
                          instance=report["instance_id"], agent=report["agent"],
                          running=",".join(report["running"]) or "-",
                          waiting=",".join(report["waiting"]) or "-")

    def _watchdog(self, instance_id: str, step: str) -> None:
        """Eligible-peer watchdog: take over a query step whose assigned
        executor crashed; wait (re-arming) for update steps."""
        runtime = self.runtimes.get(instance_id)
        if runtime is None or runtime.fragment.status is not InstanceStatus.RUNNING:
            return
        runtime.watchdogs.discard(step)
        if step_done(step) in runtime.engine.events:
            return  # completed normally
        record = runtime.fragment.steps.get(step)
        if record is not None and record.status in (StepStatus.DONE, StepStatus.RUNNING):
            return
        assigned = runtime.assigned.get(step)
        if assigned is None or assigned == self.name:
            return
        if self.network.is_up(assigned):
            return  # executor alive: reliable messaging will get it done
        compiled = runtime.compiled
        step_def = compiled.schema.steps[step]
        if step_def.step_type is StepType.UPDATE:
            # "the successor agent has to wait for the failed agent to come
            # up" — re-arm the watchdog until it recovers.
            runtime.watchdogs.add(step)
            self.simulator.schedule(
                self.config.step_status_poll_interval, self._watchdog,
                instance_id, step,
            )
            return
        # Query step: deterministic takeover by the first *up* eligible agent.
        eligible = self.agdb.eligible_agents(compiled.name, step)
        takeover = elect_executor(eligible, compiled.name, instance_id, step,
                                  is_up=self.network.is_up)
        if takeover != self.name:
            return
        # Only take over if the step's rule actually fired here (we have the
        # trigger events) — otherwise keep waiting for state.
        rules = runtime.engine.rules_for_step(step)
        if not any(rule.fired for rule in rules):
            runtime.watchdogs.add(step)
            self.simulator.schedule(
                self.config.step_status_poll_interval, self._watchdog,
                instance_id, step,
            )
            return
        self.trace.record(self.simulator.now, self.name, "step.takeover",
                          instance=instance_id, step=step, was=assigned)
        runtime.assigned[step] = self.name
        self._execute_step(instance_id, step)

    # ------------------------------------------------------------------ coordination

    def _coord_on_step_done(
        self, runtime: _AgentRuntime, instance_id: str, step: str
    ) -> None:
        schema_name = runtime.fragment.schema_name
        for spec, pair_index in self.spec_index.ro_roles(schema_name, step):
            payload = {
                "op": "ro_report",
                "spec": spec.name,
                "schema": schema_name,
                "instance_id": instance_id,
                "pair_index": pair_index,
                "key": SpecIndex.conflict_key_value(spec, runtime.fragment),
                # Leadership is decided by when the conflicting step
                # *executed*, not when its report reaches the authority.
                "time": self.simulator.now,
            }
            self._to_authority(spec, payload)
        for spec in self.spec_index.mx_region_last(schema_name, step):
            self._mx_release(runtime, instance_id, spec)
        for spec in self.spec_index.rd_targets(schema_name, step):
            payload = {
                "op": "rd_report",
                "spec": spec.name,
                "instance_id": instance_id,
                "key": SpecIndex.conflict_key_value(spec, runtime.fragment),
            }
            self._to_authority(spec, payload)

    def _to_authority(self, spec: CoordinationSpec, payload: dict[str, Any]) -> None:
        authority = self.system.authority_agent_for(spec)
        self.system.obs_coordination(
            payload.get("instance_id"), self.name, self.simulator.now,
            payload["op"], spec_name=spec.name, authority=authority,
        )
        if authority == self.name:
            self._apply_authority_op(payload)
        else:
            self.send(authority, WI.ADD_RULE.value, payload, Mechanism.COORDINATION)

    def _mx_request(
        self, runtime: _AgentRuntime, instance_id: str, spec: CoordinationSpec
    ) -> None:
        current = runtime.mx_state.get(spec.name, "none")
        if current in ("requested", "held"):
            return
        runtime.mx_state[spec.name] = "requested"
        payload = {
            "op": "mx_request",
            "spec": spec.name,
            "schema": runtime.fragment.schema_name,
            "instance_id": instance_id,
            "key": SpecIndex.conflict_key_value(spec, runtime.fragment),
            "reply_to": self.name,
        }
        self._to_authority(spec, payload)

    def _mx_release(
        self, runtime: _AgentRuntime, instance_id: str, spec: CoordinationSpec
    ) -> None:
        payload = {
            "op": "mx_release",
            "spec": spec.name,
            "schema": runtime.fragment.schema_name,
            "instance_id": instance_id,
            "key": SpecIndex.conflict_key_value(spec, runtime.fragment),
        }
        runtime.mx_state[spec.name] = "released"
        self._to_authority(spec, payload)

    def _on_add_rule(self, message: Message) -> None:
        self._apply_authority_op(dict(message.payload))

    def _apply_authority_op(self, payload: dict[str, Any]) -> None:
        op = payload["op"]
        if op == "ro_report":
            self._apply_ro_report(payload)
        elif op == "mx_request":
            self._apply_mx_request(payload)
        elif op == "mx_release":
            self._apply_mx_release(payload)
        elif op == "rd_report":
            authority = self.authorities.rd[payload["spec"]]
            authority.report_target_executed(payload["instance_id"], payload["key"])
        elif op == "rd_trigger":
            self._apply_rd_trigger(payload)
        elif op == "withdraw":
            self._apply_withdraw(payload)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown authority op {op!r}")

    def _apply_ro_report(self, payload: dict[str, Any]) -> None:
        authority = self.authorities.ro[payload["spec"]]
        instance_id = payload["instance_id"]
        time = payload.get("time", self.simulator.now)
        grants = authority.report_completion(
            payload["schema"], instance_id, payload["pair_index"], payload["key"],
            order_key=(time, instance_id),
        )
        if payload["pair_index"] == 0:
            # Defer this registrant's clearance requests by two network
            # latencies: a report of an *earlier* first-pair completion is
            # at most one latency away, so by then leadership is settled.
            self.simulator.schedule(
                2 * self.config.latency + 0.001,
                self._ro_request_clearances,
                payload["spec"], payload["schema"], instance_id, payload["key"],
            )
        self._deliver_ro_grants(authority, grants)

    def _ro_request_clearances(
        self, spec_name: str, schema_name: str, instance_id: str, key
    ) -> None:
        authority = self.authorities.ro[spec_name]
        grants = []
        for later in range(1, len(authority.spec.steps_a)):
            grant = authority.request_clearance(schema_name, instance_id, later, key)
            if grant is not None:
                grants.append(grant)
        self._deliver_ro_grants(authority, grants)

    def _deliver_ro_grants(self, authority, grants) -> None:
        pairs = authority.established_pairs()
        for grant in grants:
            spec = authority.spec
            step = spec.ordered_steps(grant.schema)[grant.pair_index]
            orders = [
                [spec.name, leading, lagging]
                for leading, lagging in pairs
                if grant.instance in (leading, lagging)
            ]
            self._send_grant(grant.schema, grant.instance, step, grant.token,
                             orders=orders)

    def _send_grant(
        self, schema_name: str, instance_id: str, step: str, token: str,
        orders: list | None = None,
    ) -> None:
        """AddEvent WI: deliver a clearance token to the eligible agents of
        the governed step (piggybacking any established leading/lagging
        pairs — the Figure 7 "R.O." lines)."""
        payload = {
            "schema_name": schema_name,
            "instance_id": instance_id,
            "token": token,
            "orders": orders or [],
        }
        for agent in self.agdb.eligible_agents(schema_name, step):
            if agent == self.name:
                self._apply_add_event(payload)
            else:
                self.send(agent, WI.ADD_EVENT.value, payload, Mechanism.COORDINATION)

    def _on_add_event(self, message: Message) -> None:
        self._apply_add_event(message.payload)

    def _apply_add_event(self, payload: Mapping[str, Any]) -> None:
        instance_id = payload["instance_id"]
        runtime = self._runtime(payload["schema_name"], instance_id)
        if payload["token"].startswith("EXT.MX."):
            spec_name = payload["token"].split(".")[2]
            runtime.mx_state[spec_name] = "held"
        for spec_name, leading, lagging in payload.get("orders", ()):
            runtime.ro_info.add((spec_name, leading, lagging))
        runtime.engine.add_event(payload["token"], self.simulator.now)

    def _on_add_precondition(self, message: Message) -> None:
        payload = message.payload
        runtime = self._runtime(payload["schema_name"], payload["instance_id"])
        runtime.engine.add_step_precondition(payload["step"], payload["token"])

    def _apply_mx_request(self, payload: dict[str, Any]) -> None:
        authority = self.authorities.mx[payload["spec"]]
        granted = authority.acquire(
            payload["schema"], payload["instance_id"], payload["key"]
        )
        if granted:
            spec = authority.spec
            first, __ = spec.region_of(payload["schema"])
            self._send_grant(
                payload["schema"], payload["instance_id"], first,
                mx_clearance_token(spec.name, payload["instance_id"]),
            )

    def _apply_mx_release(self, payload: dict[str, Any]) -> None:
        authority = self.authorities.mx[payload["spec"]]
        grantee = authority.release(
            payload["schema"], payload["instance_id"], payload["key"]
        )
        if grantee is not None:
            schema_name, instance_id = grantee
            spec = authority.spec
            first, __ = spec.region_of(schema_name)
            self._send_grant(
                schema_name, instance_id, first,
                mx_clearance_token(spec.name, instance_id),
            )

    def _apply_rd_trigger(self, payload: dict[str, Any]) -> None:
        authority = self.authorities.rd[payload["spec"]]
        spec = authority.spec
        for dependent in authority.dependents_of(
            payload["instance_id"], payload["key"]
        ):
            compiled = self.system.compiled(spec.schema_b)
            target = self._elect(compiled, dependent, spec.rollback_to_b)
            rollback_payload = {
                "schema_name": spec.schema_b,
                "instance_id": dependent,
                "origin": spec.rollback_to_b,
                "failed_step": None,
                "epoch": -1,  # resolved at the target from its fragment
                "mechanism": Mechanism.FAILURE.value,
                "from_rd": True,
            }
            self.trace.record(self.simulator.now, self.name, "rollback.dependency",
                              trigger=payload["instance_id"], dependent=dependent,
                              spec=spec.name)
            if target == self.name:
                self._apply_dependent_rollback(rollback_payload)
            else:
                self.send(target, WI.WORKFLOW_ROLLBACK.value, rollback_payload,
                          Mechanism.FAILURE)

    def _apply_dependent_rollback(self, payload: dict[str, Any]) -> None:
        runtime = self.runtimes.get(payload["instance_id"])
        epoch = (runtime.fragment.recovery_epoch + 1) if runtime is not None else 1
        self._apply_workflow_rollback({**payload, "epoch": epoch})

    def _withdraw_coordination(
        self, instance_id: str, runtime: _AgentRuntime | None, aborted: bool
    ) -> None:
        if runtime is None:
            return
        schema_name = runtime.fragment.schema_name
        for spec in self.spec_index.mx_specs(schema_name):
            if runtime.mx_state.get(spec.name) in ("held", "requested"):
                self._mx_release(runtime, instance_id, spec)
        for spec in self.spec_index.rd:
            if spec.schema_b == schema_name:
                self._to_authority(spec, {
                    "op": "withdraw", "spec": spec.name, "instance_id": instance_id,
                    "kind": "rd",
                })
        if aborted:
            for spec in self.spec_index.ro:
                if spec.involves(schema_name):
                    self._to_authority(spec, {
                        "op": "withdraw", "spec": spec.name,
                        "instance_id": instance_id, "kind": "ro",
                    })

    def _apply_withdraw(self, payload: dict[str, Any]) -> None:
        spec_name = payload["spec"]
        instance_id = payload["instance_id"]
        if payload["kind"] == "rd":
            authority = self.authorities.rd.get(spec_name)
            if authority is not None:
                authority.withdraw(instance_id)
            return
        authority_ro = self.authorities.ro.get(spec_name)
        if authority_ro is not None:
            for grant in authority_ro.withdraw(instance_id):
                step = authority_ro.spec.ordered_steps(grant.schema)[grant.pair_index]
                self._send_grant(grant.schema, grant.instance, step, grant.token)

    # ------------------------------------------------------------------ state info

    def _on_state_information(self, message: Message) -> None:
        executing = sum(
            1
            for runtime in self.runtimes.values()
            for record in runtime.fragment.steps.values()
            if record.status is StepStatus.RUNNING and record.agent == self.name
        )
        self.send(message.src, "StateInformationReply",
                  {"probe_id": message.payload.get("probe_id"), "load": executing},
                  Mechanism.NORMAL)

    # ------------------------------------------------------------------ crash/recovery

    def on_crash(self) -> None:
        self.runtimes.clear()
        # Commit trackers are volatile too; they rebuild from re-reports.
        # (Summaries are durable in the AGDB.)

    def on_recover(self) -> None:
        """Rebuild fragments from the AGDB WAL and resume.

        Completed local steps re-fire through the rule engine and take the
        OCR REUSE path, which re-sends their workflow packets — an
        idempotent repair for anything lost in the crash.
        """
        self.agdb.recover()
        for fragment in self.agdb.fragments():
            if fragment.status is not InstanceStatus.RUNNING:
                continue
            instance_id = fragment.instance_id
            compiled = self.system.compiled(fragment.schema_name)
            hosted = self.hosted_steps(compiled)
            engine = RuleEngine(
                compiled,
                action=lambda rule, iid=instance_id: self._on_rule(iid, rule),
                env_provider=fragment.env,
                steps=hosted,
                fire_hook=self.system.rule_fire_hook(self.name, instance_id),
            )
            runtime = _AgentRuntime(
                fragment=fragment,
                compiled=compiled,
                engine=engine,
                hosted=hosted,
                governed=governed_step_count(
                    compiled, self.spec_index.specs_for(fragment.schema_name)
                ),
            )
            for record in fragment.steps.values():
                if record.status is StepStatus.RUNNING and record.agent == self.name:
                    record.status = StepStatus.NOT_STARTED
                if record.agent is not None:
                    runtime.executors[record.step] = record.agent
            self.runtimes[instance_id] = runtime
            self._install_preconditions(runtime, instance_id)
            # Re-coordinating instances: restore the tracker skeleton.
            if self.agdb.has_summary(instance_id):
                self.trackers.setdefault(instance_id, _CommitTracker())
            engine.merge_events(fragment.events_snapshot, self.simulator.now)
        self.trace.record(self.simulator.now, self.name, "agent.recovered",
                          fragments=len(self.runtimes))


class DistributedControlSystem(ControlSystem):
    """Public facade for distributed workflow control (``z`` agents)."""

    architecture = "distributed"

    def __init__(
        self,
        config: SystemConfig | None = None,
        num_agents: int = 8,
        agents_per_step: int = 1,
    ):
        super().__init__(config)
        if num_agents < 1:
            raise SchemaError("distributed control needs at least one agent")
        self.agents_per_step = agents_per_step
        self.spec_index = SpecIndex()
        self.agents = [
            WorkflowAgentNode(f"agent-{i:03d}", self) for i in range(num_agents)
        ]
        self._owners: dict[str, str] = {}

    # -- wiring ---------------------------------------------------------------------

    def agent_names(self) -> list[str]:
        return [agent.name for agent in self.agents]

    def agent(self, name: str) -> WorkflowAgentNode:
        return next(a for a in self.agents if a.name == name)

    def _on_schema_registered(self, compiled: CompiledSchema) -> None:
        self.assignment.assign_round_robin(
            compiled, self.agent_names(), self.agents_per_step
        )
        # Every agent's AGDB carries the full (static) agent directory.
        for (schema_name, step), eligible in self.assignment.items():
            if schema_name != compiled.name:
                continue
            for agent in self.agents:
                agent.agdb.set_eligible_agents(schema_name, step, eligible)

    def _on_spec_added(self, spec: CoordinationSpec) -> None:
        self.spec_index.add(spec)
        authority = self.authority_agent_for(spec)
        self.agent(authority).authorities.host(spec)

    def authority_agent_for(self, spec: CoordinationSpec) -> str:
        """Deterministic authority placement: the first eligible agent of
        the spec's anchor step in ``schema_a``."""
        from repro.model.coordination_spec import (
            MutualExclusionSpec,
            RelativeOrderSpec,
            RollbackDependencySpec,
        )

        if isinstance(spec, RelativeOrderSpec):
            anchor = spec.steps_a[0]
        elif isinstance(spec, MutualExclusionSpec):
            anchor = spec.region_a[0]
        elif isinstance(spec, RollbackDependencySpec):
            anchor = spec.trigger_step_a
        else:  # pragma: no cover - defensive
            raise SchemaError(f"unknown spec type {type(spec)!r}")
        return self.assignment.eligible(spec.schema_a, anchor)[0]

    def coordination_agent_for(self, schema_name: str) -> WorkflowAgentNode:
        compiled = self.compiled(schema_name)
        name = self.assignment.eligible(schema_name, compiled.start_step)[0]
        return self.agent(name)

    def _note_owner(self, instance_id: str, node_name: str) -> None:
        self._owners[instance_id] = node_name

    # -- front-end database operations -------------------------------------------------

    def start_workflow(
        self, schema_name: str, inputs: Mapping[str, Any], delay: float = 0.0
    ) -> str:
        self.compiled(schema_name)
        instance_id = self.new_instance_id(schema_name)
        coordination_agent = self.coordination_agent_for(schema_name)
        self._note_owner(instance_id, coordination_agent.name)
        self.simulator.schedule(
            delay, coordination_agent.workflow_start, schema_name, instance_id,
            dict(inputs),
        )
        return instance_id

    def _coordination_agent_of_instance(self, instance_id: str) -> WorkflowAgentNode:
        try:
            return self.agent(self._owners[instance_id])
        except KeyError:
            raise FrontEndError(f"unknown instance {instance_id!r}") from None

    def abort_workflow(self, instance_id: str, delay: float = 0.0) -> None:
        agent = self._coordination_agent_of_instance(instance_id)
        self.simulator.schedule(delay, agent.workflow_abort, instance_id)

    def change_inputs(
        self, instance_id: str, changes: Mapping[str, Any], delay: float = 0.0
    ) -> None:
        agent = self._coordination_agent_of_instance(instance_id)
        self.simulator.schedule(
            delay, agent.workflow_change_inputs, instance_id, dict(changes)
        )

    def workflow_status(self, instance_id: str) -> InstanceStatus:
        return self._coordination_agent_of_instance(instance_id).workflow_status(
            instance_id
        )

    def probe_workflow(self, instance_id: str, delay: float = 0.0) -> None:
        """Launch the probe chain locating the instance's current steps."""
        agent = self._coordination_agent_of_instance(instance_id)
        self.simulator.schedule(delay, agent.workflow_status_probe, instance_id)

    def probe_reports(self, instance_id: str) -> list[dict]:
        """Probe reports gathered at the instance's coordination agent."""
        return self._coordination_agent_of_instance(instance_id).probe_reports(
            instance_id
        )
