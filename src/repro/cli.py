"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``
    Print the paper's analytic Tables 4-6 and the Table 7 recommendation
    matrix at the calibrated Table 3 parameter point (or overrides).
``compare``
    Run one Table-3 workload under all three architectures and print
    measured-vs-model costs (a fast, self-contained mini-evaluation).
``check``
    Parse and validate a LAWS specification file; print the compiled
    summary (schemas, steps, rules, coordination specs).
``run``
    Load a LAWS file, start N instances of a workflow under a chosen
    architecture, and print the outcomes (and optionally the trace).
``scenario``
    Run one of the canonical paper scenarios (figure3, orders, travel).
``evaluate``
    Regenerate the paper's full evaluation (Tables 4-7 + the OCR ablation)
    as a markdown report.
``sweep``
    The same evaluation fanned out over a process pool
    (``--workers N``; per-config seeds keep every result identical to the
    serial run), printing per-config wall times and the merged report.
``trace``
    Run a scenario and export its span trace (Chrome trace-event JSON,
    loadable in Perfetto / chrome://tracing, or JSONL), with ``--node`` /
    ``--category`` filters and a ``--follow <instance>`` causal-chain view.
``metrics``
    Run a scenario and export its metrics in Prometheus text format.
``analyze``
    Load a JSONL trace file, reconstruct per-instance causal timelines
    (critical path, per-phase latency), flag broken-causality anomalies,
    and optionally check the protocol-invariant catalog
    (``--check-invariants`` exits non-zero on violation).
``chaos``
    Fan deterministic random fault schedules (message drop/dup/delay/
    reorder, link outages, node crash+restart, stalls) across the six
    architecture×coordination configs and check every run against the
    protocol invariants plus liveness/durability checks.  A violating
    run is minimized and reported as a one-line replayable repro;
    ``--seed S --plan SPEC`` replays one schedule bit-for-bit.
``profile``
    Run one config (``--config distributed-failure``) or the full sweep
    grid (``--sweep``) under the in-engine instrumentation profiler and
    print the ranked top-frames table; ``--collapsed`` writes
    flamegraph-ready collapsed stacks, ``--chrome`` a Chrome trace with
    counter tracks, ``--metrics-out`` the profile counters as Prometheus
    text.
``serve``
    Run the wall-clock workflow daemon (HTTP/JSON front door) with its
    observability plane: ``/metrics`` Prometheus scrape, ``/debug/trace``
    JSONL snapshot, ``/debug/profile`` collapsed stacks, structured
    NDJSON logs (``--log-out``), liveness (``/healthz``) vs readiness
    (``/readyz``).
``top``
    Tail a running daemon's ``/events`` stream and ``/metrics`` scrape
    into a live per-instance status view (``--once`` for one snapshot).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.causal import CausalTrace
from repro.analysis.experiment import (
    EvaluationResults,
    full_evaluation,
    ocr_ablation,
    render_evaluation,
)
from repro.analysis.profiling import profile_configs, run_profiled_sweep
from repro.analysis.sweep import default_workers, run_sweep, sweep_tasks
from repro.analysis.invariants import INVARIANTS, check_invariants
from repro.analysis.model import architecture_model
from repro.analysis.recommend import recommendation_matrix
from repro.analysis.report import (
    format_table,
    measure_costs,
    render_architecture_table,
    render_comparison,
    render_recommendation,
)
from repro.engines import (
    CentralizedControlSystem,
    DistributedControlSystem,
    ParallelControlSystem,
    SystemConfig,
)
from repro.errors import CrewError
from repro.laws import load_laws
from repro.model import compile_schema
from repro.obs import (
    MetricsRegistry,
    prometheus_text,
    render_chrome_trace,
    trace_to_jsonl,
)
from repro.workloads import (
    WorkloadGenerator,
    WorkloadParameters,
    figure3_workflow,
    order_processing,
    travel_booking,
)

__all__ = ["main"]


def _make_system(architecture: str, params: WorkloadParameters, seed: int,
                 trace: bool = False):
    config = SystemConfig(seed=seed, trace=trace)
    if architecture == "centralized":
        return CentralizedControlSystem(config, num_agents=max(4, params.a * 2),
                                        agents_per_step=params.a)
    if architecture == "parallel":
        return ParallelControlSystem(config, num_engines=params.e,
                                     num_agents=max(4, params.a * 2),
                                     agents_per_step=params.a)
    return DistributedControlSystem(config, num_agents=params.z,
                                    agents_per_step=params.a)


def _emit(text: str, out: str | None) -> None:
    """Write exporter output to ``--out`` (or stdout)."""
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {out}", file=sys.stderr)
    else:
        print(text)


def _export_observability(system, args) -> None:
    """Honour ``--trace-out`` / ``--metrics-out`` flags after a run."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        return
    system.tracer.finish(system.simulator.now)
    if trace_out:
        _emit(render_chrome_trace(system.tracer, system.trace), trace_out)
    if metrics_out:
        _emit(prometheus_text(system.registry), metrics_out)


SCENARIOS = {
    "figure3": (figure3_workflow, "Figure3", {"load": 5}),
    "orders": (order_processing, "OrderProcessing",
               {"part": "gasket", "qty": 2}),
    "travel": (travel_booking, "TravelBooking",
               {"traveller": "cli", "dates": "now"}),
}


def _run_scenario(args) -> tuple:
    """Run one canonical scenario with tracing on; returns (system, ids)."""
    factory, schema_name, inputs = SCENARIOS[args.name]
    params = WorkloadParameters()
    system = _make_system(args.architecture, params, args.seed, trace=True)
    factory().install(system)
    instances = [
        system.start_workflow(schema_name, inputs, delay=i * 0.5)
        for i in range(args.instances)
    ]
    system.run()
    return system, instances


def _params_from(args) -> WorkloadParameters:
    overrides = {}
    for symbol in ("s", "e", "z", "a", "r", "v", "f"):
        value = getattr(args, symbol, None)
        if value is not None:
            overrides[symbol] = value
    return WorkloadParameters(**overrides) if overrides else WorkloadParameters()


def cmd_tables(args) -> int:
    params = _params_from(args)
    for architecture in ("centralized", "parallel", "distributed"):
        print(render_architecture_table(architecture_model(architecture, params)))
        print()
    print(render_recommendation(recommendation_matrix(params)))
    return 0


def cmd_compare(args) -> int:
    params = _params_from(args).evolve(c=2, i=args.instances)
    for architecture in ("centralized", "parallel", "distributed"):
        generator = WorkloadGenerator(params, seed=args.seed)
        workload = generator.build()
        system = _make_system(architecture, params, args.seed)
        generator.install(system, workload)
        generator.drive(system, workload)
        system.run()
        nodes = (system.engine_nodes() if architecture != "distributed"
                 else system.agent_names())
        measured = measure_costs(architecture, system.metrics, nodes)
        print(render_comparison(architecture_model(architecture, params), measured))
        print()
    return 0


def cmd_check(args) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    document = load_laws(source)
    rows = []
    for schema in document.schemas:
        compiled = compile_schema(schema)
        rows.append([
            schema.name,
            len(schema.steps),
            len(compiled.rule_templates),
            len(compiled.terminal_steps),
            len(schema.compensation_sets),
            len(schema.rollback_points),
        ])
    print(format_table(
        ["workflow", "steps", "rules", "terminals", "comp. sets",
         "rollback points"],
        rows,
    ))
    if document.specs:
        print()
        print(format_table(
            ["coordination spec", "kind", "schemas"],
            [[spec.name, type(spec).__name__,
              f"{spec.schema_a} / {spec.schema_b}"] for spec in document.specs],
        ))
    print(f"\nOK: {len(document.schemas)} workflow(s), "
          f"{len(document.specs)} coordination spec(s).")
    return 0


def cmd_run(args) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        document = load_laws(handle.read())
    params = WorkloadParameters()
    instrument = args.trace or bool(args.trace_out) or bool(args.metrics_out)
    system = _make_system(args.architecture, params, args.seed, trace=instrument)
    document.install(system)
    schema_name = args.workflow or document.schemas[0].name
    inputs = {}
    for pair in args.input or []:
        name, __, value = pair.partition("=")
        try:
            inputs[name] = int(value)
        except ValueError:
            inputs[name] = value
    instances = [
        system.start_workflow(schema_name, inputs, delay=i * args.gap)
        for i in range(args.instances)
    ]
    system.run()
    if args.trace:
        print(system.trace.render())
        print()
    for instance in instances:
        try:
            outcome = system.outcome(instance)
            print(f"{instance}: {outcome.status.value}  {outcome.outputs}")
        except CrewError:
            print(f"{instance}: still running (deadlocked spec?)")
    committed = len(system.committed_instances())
    print(f"\n{committed}/{len(instances)} committed under "
          f"{args.architecture} control; "
          f"{system.metrics.total_messages()} physical messages.")
    _export_observability(system, args)
    return 0


def cmd_evaluate(args) -> int:
    results = full_evaluation(seed=args.seed, workers=args.workers)
    report = render_evaluation(results)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def _sweep_progress(done: int, total: int, task, result) -> None:
    """Per-task status line on stderr (``--progress``)."""
    print(f"  [{done}/{total}] {task.label or task.architecture}: "
          f"{result.wall_time_s:.2f}s wall, "
          f"{result.events_per_sec:,.0f} events/s",
          file=sys.stderr, flush=True)


def cmd_sweep(args) -> int:
    import time as _time

    tasks = sweep_tasks(seed=args.seed)
    workers = args.workers if args.workers is not None else default_workers()
    started = _time.perf_counter()
    sweep = run_sweep(tasks, workers=workers,
                      progress=_sweep_progress if args.progress else None)
    wall = _time.perf_counter() - started
    print(f"# sweep: {len(tasks)} configs on {sweep.workers} worker(s), "
          f"{wall:.2f}s wall")
    print()
    print(format_table(
        ["config", "committed", "aborted", "messages", "task wall s",
         "events/s"],
        [[row.get("label", "-"), row["committed"], row["aborted"],
          row["messages"], f"{row['wall_time_s']:.3f}",
          f"{row.get('events_per_sec', 0):,.0f}"]
         for row in sweep.run_log],
    ))
    if args.report:
        results = EvaluationResults(params=tasks[0].params)
        for task, result in zip(sweep.tasks, sweep.results):
            bucket = (results.coordinated if task.coordination
                      else results.normal)
            bucket[task.architecture] = result
        results.ocr = ocr_ablation(seed=args.seed + 4)
        report = render_evaluation(results)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
            print(f"\nwrote {args.output}")
        else:
            print()
            print(report)
    return 0


def cmd_scenario(args) -> int:
    system, instances = _run_scenario(args)
    print(system.trace.render(limit=60))
    print()
    for instance in instances:
        outcome = system.outcome(instance)
        print(f"{instance}: {outcome.status.value}  {outcome.outputs}")
    _export_observability(system, args)
    return 0


def cmd_trace(args) -> int:
    system, __ = _run_scenario(args)
    system.tracer.finish(system.simulator.now)
    drops = system.trace.drop_summary() if system.trace is not None else None
    if drops is not None:
        print(f"warning: {drops}", file=sys.stderr)
    nodes = set(args.node) if args.node else None
    categories = set(args.category) if args.category else None
    if args.follow:
        ct = CausalTrace.from_run(system.trace, system.tracer)
        path = ct.critical_path(args.follow)
        if not path:
            print(f"error: no spans for instance {args.follow!r}",
                  file=sys.stderr)
            return 1
        lines = [f"causal chain for {args.follow} ({len(path)} spans):"]
        for span in path:
            edge = ""
            if span.link_id is not None:
                link = ct.by_id.get(span.link_id)
                if link is not None:
                    edge = f"  <-link- #{link.span_id} @{link.node}"
            lines.append(
                f"  [{span.start:9.3f}] #{span.span_id:<5} "
                f"{span.node:<14} {span.category:<12} {span.name}{edge}"
            )
        _emit("\n".join(lines), args.out)
        return 0
    if args.format == "chrome":
        _emit(render_chrome_trace(system.tracer, system.trace,
                                  nodes=nodes, categories=categories),
              args.out)
    else:
        _emit(trace_to_jsonl(system.trace, system.tracer,
                             nodes=nodes, categories=categories),
              args.out)
    return 0


def cmd_analyze(args) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        ct = CausalTrace.from_jsonl(handle.read())
    instances = ct.instances()
    if args.instance:
        instances = [i for i in instances if i in set(args.instance)]
    print(f"{args.file}: {len(ct.spans)} spans, {len(ct.records)} records, "
          f"{len(instances)} instance(s)")
    for instance in instances:
        timeline = ct.timeline(instance)
        if not timeline:
            continue
        start = min(s.start for s in timeline)
        end = max(s.end if s.end is not None else s.start for s in timeline)
        path = ct.critical_path(instance)
        print(f"\n{instance}: {len(timeline)} spans, "
              f"makespan {end - start:.3f} "
              f"[{start:.3f} .. {end:.3f}]")
        for phase in ct.phase_latency(instance):
            print(f"  phase {phase.category:<14} {phase.span_count:>4} spans  "
                  f"{phase.total:9.3f} time units")
        print(f"  critical path: {len(path)} spans, "
              f"{' -> '.join(s.name for s in path[-6:])}"
              + (" (tail)" if len(path) > 6 else ""))
    anomalies = ct.anomalies()
    exit_code = 0
    if anomalies:
        print(f"\n{len(anomalies)} anomal{'y' if len(anomalies) == 1 else 'ies'}:")
        for anomaly in anomalies:
            print(f"  {anomaly}")
        if args.strict:
            exit_code = 1
    else:
        print("\nno causal anomalies.")
    if args.check_invariants:
        violations = check_invariants(
            ct, list(args.invariant) if args.invariant else None
        )
        if violations:
            print(f"\n{len(violations)} invariant violation(s):")
            for violation in violations:
                print(violation.render())
            exit_code = 1
        else:
            checked = args.invariant or sorted(INVARIANTS)
            print(f"\ninvariants OK: {', '.join(checked)}")
    return exit_code


def cmd_metrics(args) -> int:
    system, __ = _run_scenario(args)
    system.tracer.finish(system.simulator.now)
    _emit(prometheus_text(system.registry), args.out)
    return 0


def _cmd_chaos_realtime(args) -> int:
    """`repro chaos --runtime asyncio`: wall-clock outcome-consistency runs."""
    from repro.analysis.chaos import run_realtime_chaos

    configs = tuple(args.config) if args.config else ("centralized/normal",)
    seed = args.seed if args.seed is not None else args.seed_base
    plan = args.plan if args.plan is not None else "drop=0.05,dup=0.05,delay=0.05"
    rows, bad = [], 0
    for label in configs:
        report = run_realtime_chaos(label, seed=seed, plan_spec=plan,
                                    replays=args.replays)
        if not report.consistent:
            bad += 1
        committed = (sum(1 for v in report.digests[0].values()
                         if v.startswith("committed"))
                     if report.digests else 0)
        rows.append([
            label, seed, report.instances, report.replays,
            f"{committed}/{report.instances}",
            len(report.unfinished) or "-",
            f"{report.wall_time_s:.2f}s",
            "consistent" if report.consistent else "DIVERGED",
        ])
    print(format_table(
        ["config", "seed", "instances", "replays", "committed",
         "unfinished", "wall", "verdict"],
        rows,
    ))
    print(f"\n{len(configs)} wall-clock chaos run(s) with plan '{plan}', "
          f"{bad} inconsistent.")
    return 1 if bad else 0


def cmd_chaos(args) -> int:
    import json
    import os

    from repro.analysis.chaos import CHAOS_CONFIGS, chaos_tasks, run_chaos

    if args.runtime != "sim":
        return _cmd_chaos_realtime(args)

    configs = tuple(args.config) if args.config else CHAOS_CONFIGS
    seeds = [args.seed] if args.seed is not None else list(
        range(args.seed_base, args.seed_base + args.seeds)
    )
    tasks = chaos_tasks(seeds, configs=configs, plan_spec=args.plan or "",
                        strict=args.strict)
    workers = args.workers if args.workers is not None else default_workers()

    def chaos_progress(done, total, task, outcome):
        status = "ok" if outcome.ok else "VIOLATION"
        print(f"  [{done}/{total}] {task.config} seed {task.seed}: "
              f"{outcome.wall_time_s:.2f}s wall, "
              f"{outcome.events_per_sec:,.0f} events/s, {status}",
              file=sys.stderr, flush=True)

    outcomes = run_chaos(tasks, workers=workers,
                         progress=chaos_progress if args.progress else None)

    rows = []
    for outcome in outcomes:
        rows.append([
            outcome.config, outcome.seed,
            f"{outcome.committed}/{outcome.started}", outcome.aborted,
            outcome.messages, outcome.lost_messages,
            len(outcome.violations) or "-",
        ])
    print(format_table(
        ["config", "seed", "committed", "aborted", "messages", "lost",
         "violations"],
        rows,
    ))
    bad = [o for o in outcomes if not o.ok]
    print(f"\n{len(outcomes)} run(s), {len(bad)} with violations.")
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        summary = [o.as_dict() for o in outcomes]
        path = os.path.join(args.out, "chaos-summary.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=1)
        print(f"wrote {path}")
    for outcome in bad:
        print(f"\n=== {outcome.config} seed {outcome.seed} "
              f"(plan {outcome.plan_spec})")
        for violation in outcome.violations:
            print(violation)
        print(f"repro: {outcome.repro_line}")
        if args.out and outcome.trace_jsonl is not None:
            name = (f"chaos-{outcome.config.replace('/', '-')}"
                    f"-seed{outcome.seed}")
            trace_path = os.path.join(args.out, f"{name}.trace.jsonl")
            with open(trace_path, "w", encoding="utf-8") as handle:
                handle.write(outcome.trace_jsonl)
            repro_path = os.path.join(args.out, f"{name}.repro.txt")
            with open(repro_path, "w", encoding="utf-8") as handle:
                handle.write(outcome.repro_line + "\n")
            print(f"artifacts: {trace_path}, {repro_path}")
    return 1 if bad else 0


def cmd_profile(args) -> int:
    import json

    if args.sweep or not args.config:
        configs = profile_configs()
        if args.config:
            configs += [c for c in args.config if c not in configs]
    else:
        configs = list(args.config)
    runs, prof = run_profiled_sweep(
        configs, seed=args.seed, sample_interval=args.sample_interval,
    )
    print(f"# profile: {len(runs)} config(s), seed {args.seed}, "
          f"{sum(r.wall_time_s for r in runs):.2f}s profiled wall")
    print()
    print(format_table(
        ["config", "committed", "aborted", "messages", "events",
         "sim time", "wall s", "events/s", "peak RSS KB"],
        [[run.config, run.committed, run.aborted, run.messages, run.events,
          f"{run.sim_time:.1f}", f"{run.wall_time_s:.3f}",
          f"{run.events_per_sec:,.0f}",
          run.peak_rss_kb if run.peak_rss_kb is not None else "-"]
         for run in runs],
    ))
    print()
    print(prof.render_top(limit=args.top))
    if args.collapsed:
        _emit(prof.collapsed(), args.collapsed)
    else:
        print()
        print("# collapsed stacks (flamegraph input: frame;frame;... self_us)")
        print(prof.collapsed())
    if args.chrome:
        _emit(json.dumps(prof.chrome_counter_trace(), indent=1), args.chrome)
    if args.metrics_out:
        registry = MetricsRegistry()
        prof.publish(registry)
        _emit(prometheus_text(registry), args.metrics_out)
    if args.json:
        _emit(json.dumps({
            "seed": args.seed,
            "runs": [run.as_dict() for run in runs],
            "profile": prof.summary(),
            "top_frames": [stat.as_dict() for stat in prof.top_frames()],
        }, indent=1), args.json)
    return 0


def cmd_serve(args) -> int:
    """Boot the wall-clock daemon and serve until interrupted."""
    import asyncio
    import signal

    from repro.obs.logging import StructuredLogger, open_log_stream
    from repro.service import WorkflowService, serve as serve_forever

    logger = StructuredLogger(
        stream=open_log_stream(args.log_out),
        min_level=args.log_level,
        service="repro-serve",
    )
    service = WorkflowService(
        architecture=args.architecture,
        seed=args.seed,
        latency=args.latency,
        work_time_scale=args.work_time_scale,
        num_agents=args.agents,
        observability=not args.no_observability,
        trace_capacity=args.trace_capacity,
        logger=logger,
        state_dir=args.state_dir,
        max_inflight=args.max_inflight,
        rate_limit=args.rate_limit,
        rate_burst=args.burst,
        enable_fault_endpoint=args.enable_fault_endpoint,
    )

    async def run() -> None:
        ready = asyncio.Event()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX loop: SIGTERM falls back to abrupt exit
        task = asyncio.ensure_future(
            serve_forever(service, args.host, args.port, ready=ready)
        )
        await ready.wait()
        surfaces = ("" if args.no_observability
                    else ", GET /metrics | /debug/trace | /debug/profile")
        recovered = service.status().get("instances_recovered", 0)
        durable = (f" [state-dir {args.state_dir}, {recovered} instance(s) "
                   f"recovered]" if args.state_dir else "")
        print(f"repro serve: {args.architecture} control on "
              f"http://{args.host}:{args.port} "
              f"(POST /workflows, GET /instances/<id>[/events]{surfaces})"
              f"{durable}",
              file=sys.stderr, flush=True)
        waiter = asyncio.ensure_future(stop.wait())
        done, __ = await asyncio.wait(
            {task, waiter}, return_when=asyncio.FIRST_COMPLETED
        )
        if waiter in done and not task.done():
            # SIGTERM: graceful drain — shed new submissions, give the
            # running instances a bounded grace to finish, then stop.
            print("repro serve: SIGTERM received, draining "
                  f"({service.running_count()} running, grace "
                  f"{args.drain_grace:g}s)", file=sys.stderr, flush=True)
            service.begin_drain()
            deadline = loop.time() + args.drain_grace
            while service.running_count() and loop.time() < deadline:
                await asyncio.sleep(0.05)
            task.cancel()
        waiter.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    drops = service.system.trace.drop_summary()
    if drops is not None:
        print(f"warning: {drops} during serve", file=sys.stderr)
    return 0


def _parse_prometheus(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Prometheus exposition text -> ``{name: [(labels, value), ...]}``.

    Comment/HELP/TYPE lines and malformed samples are skipped; good
    enough for the instruments our own exporter writes (no escaping of
    ``"`` or ``,`` inside label values).
    """
    metrics: dict[str, list[tuple[dict[str, str], float]]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, __, raw = line.rpartition(" ")
        try:
            value = float(raw)
        except ValueError:
            continue
        name, __, rest = key.partition("{")
        labels: dict[str, str] = {}
        if rest:
            for part in rest.rstrip("}").split(","):
                lname, sep, lval = part.partition("=")
                if sep:
                    labels[lname] = lval.strip('"')
        metrics.setdefault(name, []).append((labels, value))
    return metrics


def _metric_value(metrics, name: str, default: float = 0.0, **labels) -> float:
    """Sum of a metric's samples matching the given label subset."""
    total, hit = 0.0, False
    for sample_labels, value in metrics.get(name, ()):
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            total += value
            hit = True
    return total if hit else default


def _render_top(status, instances, metrics, events) -> str:
    """One `repro top` frame: headline counters + per-instance table."""
    finished = status.get("instances_finished", 0)
    submitted = status.get("instances_submitted", 0)
    lines = [
        f"repro serve · {status.get('architecture', '?')} · "
        f"runtime={status.get('runtime', '?')} · "
        f"up {status.get('uptime', 0.0):.1f}s · "
        f"{'ready' if status.get('ready') else 'NOT READY'}"
        + (" (draining)" if status.get("draining") else ""),
        f"instances {finished}/{submitted} finished · "
        f"events {status.get('events_processed', 0)} · "
        f"messages {status.get('messages_sent', 0)} · "
        f"retries {status.get('executor_retries', 0)} · "
        f"failures {status.get('executor_failures', 0)} · "
        f"trace drops {status.get('trace_dropped', 0)}",
    ]
    if metrics:
        pending = _metric_value(metrics, "crew_realtime_pending_timers")
        inflight = _metric_value(metrics, "crew_executor_inflight_tasks")
        subs = _metric_value(metrics, "crew_service_event_subscribers")
        line = (f"pending timers {pending:.0f} · inflight tasks "
                f"{inflight:.0f} · subscribers {subs:.0f}")
        lat_count = _metric_value(
            metrics, "crew_service_instance_latency_seconds_count")
        if lat_count:
            lat_sum = _metric_value(
                metrics, "crew_service_instance_latency_seconds_sum")
            line += f" · mean latency {lat_sum / lat_count:.3f}s"
        lines.append(line)
    header = (f"{'instance':<24} {'workflow':<16} {'status':<12} "
              f"{'age s':>8} {'events':>7}  last event")
    lines += ["", header, "-" * len(header)]
    for row in instances:
        iid = row.get("instance", "?")
        seen = events.get(iid, {})
        lines.append(
            f"{iid:<24} {row.get('workflow', '-'):<16} "
            f"{row.get('status', '?'):<12} {row.get('age', 0.0):>8.2f} "
            f"{seen.get('count', 0):>7}  {seen.get('last', '-')}"
        )
    if not instances:
        lines.append("(no instances submitted yet)")
    return "\n".join(lines)


def cmd_top(args) -> int:
    """Live per-instance status view of a running ``repro serve``."""
    import json as _json
    import threading
    import time
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")

    def fetch(path: str) -> str:
        with urllib.request.urlopen(base + path, timeout=3.0) as resp:
            return resp.read().decode()

    events: dict[str, dict] = {}

    def tail_events() -> None:
        # Daemon thread: one long-lived GET /events NDJSON stream feeding
        # the per-instance "events seen / last event" columns.  When the
        # stream drops (serve restarted, drain closed the firehose) it
        # reconnects with backoff; the polled columns keep working
        # meanwhile.
        wait = 0.5
        while True:
            try:
                resp = urllib.request.urlopen(base + "/events")
                wait = 0.5
                for raw in resp:
                    rec = _json.loads(raw)
                    iid = rec.get("instance")
                    if not iid:
                        continue
                    seen = events.setdefault(iid, {"count": 0, "last": "-"})
                    seen["count"] += 1
                    seen["last"] = rec.get("kind", "-")
            except Exception:
                pass
            time.sleep(wait)
            wait = min(wait * 2, 15.0)

    if not args.no_events and not args.once:
        threading.Thread(target=tail_events, daemon=True).start()

    backoff = 0.5
    while True:
        try:
            status = _json.loads(fetch("/healthz"))
            instances = _json.loads(fetch("/instances"))["instances"]
            try:
                metrics = _parse_prometheus(fetch("/metrics"))
            except urllib.error.HTTPError:
                metrics = {}  # observability disabled: poll-only columns
        except OSError as exc:
            # A dashboard that dies when its daemon restarts is useless
            # during exactly the incident it exists for: keep retrying
            # with exponential backoff (capped), unless --once.
            if args.once:
                print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
                return 1
            print(f"\x1b[2J\x1b[Hrepro top: cannot reach {base} ({exc}); "
                  f"retrying in {backoff:.1f}s", flush=True)
            try:
                time.sleep(backoff)
            except KeyboardInterrupt:
                return 0
            backoff = min(backoff * 2, 15.0)
            continue
        backoff = 0.5
        frame = _render_top(status, instances, metrics, events)
        if args.once:
            print(frame)
            return 0
        print(f"\x1b[2J\x1b[H{frame}", flush=True)
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CREW: failure handling and coordinated execution of "
                    "concurrent workflows (ICDE 1998 reproduction)",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="print the analytic Tables 4-7")
    for symbol in ("s", "e", "z", "a", "r", "v", "f"):
        tables.add_argument(f"--{symbol}", type=int, default=None)
    tables.set_defaults(fn=cmd_tables)

    compare = sub.add_parser("compare", help="measured vs model, all architectures")
    compare.add_argument("--instances", type=int, default=10)
    compare.add_argument("--seed", type=int, default=7)
    for symbol in ("s", "e", "z", "a", "r", "v", "f"):
        compare.add_argument(f"--{symbol}", type=int, default=None)
    compare.set_defaults(fn=cmd_compare)

    check = sub.add_parser("check", help="validate a LAWS specification file")
    check.add_argument("file")
    check.set_defaults(fn=cmd_check)

    run = sub.add_parser("run", help="run workflows from a LAWS file")
    run.add_argument("file")
    run.add_argument("--workflow", default=None,
                     help="workflow name (default: first in the file)")
    run.add_argument("--architecture", default="distributed",
                     choices=("centralized", "parallel", "distributed"))
    run.add_argument("--instances", type=int, default=1)
    run.add_argument("--gap", type=float, default=0.5,
                     help="arrival gap between instances")
    run.add_argument("--input", action="append", metavar="NAME=VALUE")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--trace", action="store_true")
    run.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write a Chrome trace-event JSON of the run "
                          "(implies --trace instrumentation)")
    run.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write Prometheus text-format metrics of the run")
    run.set_defaults(fn=cmd_run)

    evaluate = sub.add_parser(
        "evaluate", help="regenerate the full evaluation as a markdown report"
    )
    evaluate.add_argument("--seed", type=int, default=7)
    evaluate.add_argument("--workers", type=int, default=1,
                          help="process-pool size for the Table 4-6 configs "
                               "(default: serial)")
    evaluate.add_argument("--output", default=None,
                          help="write the report to this file")
    evaluate.set_defaults(fn=cmd_evaluate)

    sweep = sub.add_parser(
        "sweep",
        help="fan the evaluation configs out over a process pool",
    )
    sweep.add_argument("--workers", type=int, default=None,
                       help="process-pool size (default: one per core)")
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--report", action="store_true",
                       help="also render the merged Tables 4-7 report")
    sweep.add_argument("--output", default=None,
                       help="write the report to this file (with --report)")
    sweep.add_argument("--progress", action="store_true",
                       help="print a per-task status line (config, wall "
                            "time, events/s) on stderr as tasks finish")
    sweep.set_defaults(fn=cmd_sweep)

    def scenario_args(p, trace_outs: bool = True) -> None:
        p.add_argument("name", choices=tuple(SCENARIOS))
        p.add_argument("--architecture", default="distributed",
                       choices=("centralized", "parallel", "distributed"))
        p.add_argument("--instances", type=int, default=1)
        p.add_argument("--seed", type=int, default=0)
        if trace_outs:
            p.add_argument("--trace-out", default=None, metavar="FILE")
            p.add_argument("--metrics-out", default=None, metavar="FILE")

    scenario = sub.add_parser("scenario", help="run a canonical paper scenario")
    scenario_args(scenario)
    scenario.set_defaults(fn=cmd_scenario)

    trace = sub.add_parser(
        "trace", help="run a scenario and export its span trace"
    )
    scenario_args(trace, trace_outs=False)
    trace.add_argument("--format", default="chrome",
                       choices=("chrome", "jsonl"),
                       help="chrome = trace-event JSON (Perfetto), "
                            "jsonl = one JSON object per line")
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="output file (default: stdout)")
    trace.add_argument("--node", action="append", metavar="NODE",
                       help="only export spans/records of this node "
                            "(repeatable)")
    trace.add_argument("--category", action="append", metavar="CAT",
                       help="only export spans of this category (repeatable)")
    trace.add_argument("--follow", default=None, metavar="INSTANCE",
                       help="print the causal chain (critical path) of one "
                            "instance instead of exporting")
    trace.set_defaults(fn=cmd_trace)

    analyze = sub.add_parser(
        "analyze", help="analyze an exported JSONL trace file"
    )
    analyze.add_argument("file", help="JSONL trace (repro trace --format jsonl)")
    analyze.add_argument("--instance", action="append", metavar="ID",
                         help="restrict the report to this instance "
                              "(repeatable)")
    analyze.add_argument("--check-invariants", action="store_true",
                         help="run the protocol-invariant catalog; exit 1 "
                              "on any violation")
    analyze.add_argument("--invariant", action="append", metavar="NAME",
                         choices=sorted(INVARIANTS),
                         help="check only this invariant (repeatable)")
    analyze.add_argument("--strict", action="store_true",
                         help="also exit 1 on causal anomalies")
    analyze.set_defaults(fn=cmd_analyze)

    metrics = sub.add_parser(
        "metrics", help="run a scenario and export Prometheus metrics"
    )
    scenario_args(metrics, trace_outs=False)
    metrics.add_argument("--out", default=None, metavar="FILE",
                         help="output file (default: stdout)")
    metrics.set_defaults(fn=cmd_metrics)

    chaos = sub.add_parser(
        "chaos",
        help="explore random fault schedules against the protocol invariants",
    )
    chaos.add_argument("--seeds", type=int, default=25,
                       help="number of schedules per config (default: 25)")
    chaos.add_argument("--seed-base", type=int, default=1,
                       help="first seed of the range (default: 1)")
    chaos.add_argument("--seed", type=int, default=None,
                       help="run exactly this one seed (replay mode)")
    chaos.add_argument("--plan", default=None, metavar="SPEC",
                       help="explicit fault plan, e.g. "
                            "'drop=0.05,crash=agent-003@40+25' "
                            "(default: derived from each seed)")
    chaos.add_argument("--config", action="append", metavar="ARCH/MODE",
                       help="restrict to one config, e.g. "
                            "distributed/coordinated (repeatable; "
                            "default: all six)")
    chaos.add_argument("--workers", type=int, default=None,
                       help="process-pool size (default: one per core)")
    chaos.add_argument("--strict", action="store_true",
                       help="also fail on permanently lost messages "
                            "(exhausted retry budgets)")
    chaos.add_argument("--out", default=None, metavar="DIR",
                       help="write summary JSON + per-violation trace/repro "
                            "artifacts into this directory")
    chaos.add_argument("--progress", action="store_true",
                       help="print a per-run status line (config, seed, "
                            "wall time, events/s) on stderr as runs finish")
    chaos.add_argument("--runtime", default="sim",
                       choices=("sim", "asyncio"),
                       help="'sim' (default): bit-deterministic kernel "
                            "sweep; 'asyncio': run the plan on the "
                            "wall-clock backend and check outcome-level "
                            "consistency across replays")
    chaos.add_argument("--replays", type=int, default=2,
                       help="wall-clock mode: replays whose outcome "
                            "digests must match (default: 2)")
    chaos.set_defaults(fn=cmd_chaos)

    profile = sub.add_parser(
        "profile",
        help="run configs under the in-engine instrumentation profiler",
    )
    profile.add_argument("--config", action="append", metavar="ARCH-MODE",
                         help="profile one config, e.g. distributed-failure "
                              "(repeatable; modes: normal, coordinated, "
                              "failure; default: the six-config sweep grid)")
    profile.add_argument("--sweep", action="store_true",
                         help="profile the full six-config sweep grid "
                              "(the default when no --config is given); "
                              "with --config, runs the grid plus the extras")
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--top", type=int, default=15,
                         help="rows in the ranked top-frames table")
    profile.add_argument("--sample-interval", type=int, default=256,
                         help="events between counter-track samples")
    profile.add_argument("--collapsed", default=None, metavar="FILE",
                         help="write collapsed stacks (flamegraph input) to "
                              "FILE instead of stdout")
    profile.add_argument("--chrome", default=None, metavar="FILE",
                         help="write a Chrome trace-event JSON of the "
                              "profiler's counter tracks")
    profile.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write the profile counters as Prometheus text")
    profile.add_argument("--json", default=None, metavar="FILE",
                         help="write per-run counters + frame stats as JSON")
    profile.set_defaults(fn=cmd_profile)

    serve = sub.add_parser(
        "serve",
        help="run the wall-clock workflow daemon (HTTP/JSON front door)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8450)
    serve.add_argument("--architecture", default="centralized",
                       choices=("centralized", "parallel", "distributed"))
    serve.add_argument("--agents", type=int, default=4,
                       help="application agent count")
    serve.add_argument("--latency", type=float, default=0.0,
                       help="injected per-message delivery delay (seconds)")
    serve.add_argument("--work-time-scale", type=float, default=0.01,
                       help="seconds of service time per unit of step cost")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--no-observability", action="store_true",
                       help="disable /metrics, /debug/trace and "
                            "/debug/profile (bare throughput mode)")
    serve.add_argument("--trace-capacity", type=int, default=200_000,
                       help="trace ring-buffer size in records (oldest "
                            "evicted; drops reported at shutdown)")
    serve.add_argument("--log-out", default="-", metavar="FILE",
                       help="structured NDJSON log destination: '-' = "
                            "stderr (default), 'off' = disabled, else "
                            "append to FILE")
    serve.add_argument("--log-level", default="info",
                       choices=("debug", "info", "warning", "error"))
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="crash-durable state directory: journal "
                            "installed documents, submissions and outcomes "
                            "to a checksummed WAL, and recover in-flight "
                            "instances on the next boot")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="bound on acknowledged-but-unfinished instances;"
                            " submissions over the bound are refused with "
                            "429 + Retry-After")
    serve.add_argument("--rate-limit", type=float, default=None,
                       metavar="PER_S",
                       help="token-bucket submission rate limit "
                            "(instances/second; default: unlimited)")
    serve.add_argument("--burst", type=float, default=None,
                       help="token-bucket burst capacity "
                            "(default: max(rate, 1))")
    serve.add_argument("--enable-fault-endpoint", action="store_true",
                       help="enable POST /debug/faults wall-clock fault "
                            "injection (off by default; chaos rigs only)")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       metavar="S",
                       help="seconds to let running instances finish after "
                            "SIGTERM before forcing shutdown")
    serve.set_defaults(fn=cmd_serve)

    top = sub.add_parser(
        "top",
        help="live per-instance status view of a running repro serve",
    )
    top.add_argument("--url", default="http://127.0.0.1:8450",
                     help="base URL of the daemon (default: %(default)s)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period in seconds")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (no screen clear)")
    top.add_argument("--no-events", action="store_true",
                     help="poll-only: skip tailing the /events stream")
    top.set_defaults(fn=cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CrewError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
