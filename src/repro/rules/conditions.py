"""Safe condition expressions over workflow data items.

Rules and conditional control arcs in the paper carry a *condition* that is
"evaluated by referring to the values of the different data items in the
data table and step status table".  Conditions here are small boolean
expressions written in Python syntax, referencing data items by their
dotted workflow names::

    S2.O1 > 10 and WF.I2 == 'Blower'
    defined(S3.O1) or S1.O2 <= 0

The expression is parsed once with :mod:`ast` and validated against a
whitelist of node types, so no attribute access, subscripting of arbitrary
objects, imports or calls (other than a small builtin set) can occur.
Dotted names like ``S2.O1`` are resolved as single keys in the evaluation
environment, matching the data-table layout of the workflow packet in
Figure 7 of the paper.
"""

from __future__ import annotations

import ast
from typing import Any, Mapping

from repro.errors import ConditionError

__all__ = ["Condition", "TRUE"]

_ALLOWED_CALLS = {"abs", "min", "max", "len", "round"}

_CMP_OPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}

_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
}


class _Unbound:
    """Sentinel distinguishing 'absent data item' from a stored ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


_UNBOUND = _Unbound()


def _dotted_name(node: ast.expr) -> str | None:
    """Collapse ``Attribute``/``Name`` chains like ``S2.O1`` into a string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Condition:
    """A parsed, reusable boolean expression over data-item names.

    The expression is validated at construction; :meth:`evaluate` then runs
    against a mapping from dotted names (``"S2.O1"``) to values.  Unbound
    names raise :class:`~repro.errors.ConditionError` unless wrapped in the
    ``defined(...)`` guard.
    """

    def __init__(self, text: str):
        if not text or not text.strip():
            raise ConditionError("empty condition expression")
        self.text = text.strip()
        try:
            tree = ast.parse(self.text, mode="eval")
        except SyntaxError as exc:
            raise ConditionError(f"cannot parse condition {self.text!r}: {exc}") from exc
        self._tree = tree
        self.refs = frozenset(self._collect_refs(tree.body))

    # -- construction helpers ------------------------------------------------

    def _collect_refs(self, node: ast.expr) -> set[str]:
        """Walk the AST, validating node types and gathering data refs."""
        refs: set[str] = set()
        self._walk(node, refs)
        return refs

    def _walk(self, node: ast.expr, refs: set[str]) -> None:
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, (bool, int, float, str, type(None))):
                raise ConditionError(f"unsupported literal in {self.text!r}")
            return
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = _dotted_name(node)
            if dotted is None:
                raise ConditionError(f"unsupported attribute access in {self.text!r}")
            refs.add(dotted)
            return
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._walk(value, refs)
            return
        if isinstance(node, ast.UnaryOp):
            if not isinstance(node.op, (ast.Not, ast.USub, ast.UAdd)):
                raise ConditionError(f"unsupported unary operator in {self.text!r}")
            self._walk(node.operand, refs)
            return
        if isinstance(node, ast.BinOp):
            if type(node.op) not in _BIN_OPS:
                raise ConditionError(f"unsupported binary operator in {self.text!r}")
            self._walk(node.left, refs)
            self._walk(node.right, refs)
            return
        if isinstance(node, ast.Compare):
            for op in node.ops:
                if type(op) not in _CMP_OPS:
                    raise ConditionError(f"unsupported comparison in {self.text!r}")
            self._walk(node.left, refs)
            for comparator in node.comparators:
                self._walk(comparator, refs)
            return
        if isinstance(node, ast.Call):
            name = node.func.id if isinstance(node.func, ast.Name) else None
            if name == "defined":
                if len(node.args) != 1 or node.keywords:
                    raise ConditionError("defined() takes exactly one data item")
                dotted = _dotted_name(node.args[0])
                if dotted is None:
                    raise ConditionError("defined() argument must be a data item name")
                # Deliberately not added to `refs`: defined() tolerates absence.
                return
            if name in _ALLOWED_CALLS:
                for arg in node.args:
                    self._walk(arg, refs)
                if node.keywords:
                    raise ConditionError(f"{name}() does not accept keyword arguments")
                return
            raise ConditionError(f"call to {name or '<expr>'!r} not allowed in conditions")
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._walk(element, refs)
            return
        raise ConditionError(
            f"unsupported syntax ({type(node).__name__}) in condition {self.text!r}"
        )

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        """Evaluate to a boolean against ``env`` (dotted name -> value)."""
        return bool(self._eval(self._tree.body, env))

    def _eval(self, node: ast.expr, env: Mapping[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = _dotted_name(node)
            value = env.get(dotted, _UNBOUND) if dotted is not None else _UNBOUND
            if value is _UNBOUND:
                raise ConditionError(
                    f"data item {dotted!r} is unbound while evaluating {self.text!r}"
                )
            return value
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result: Any = True
                for value in node.values:
                    result = self._eval(value, env)
                    if not result:
                        return result
                return result
            result = False
            for value in node.values:
                result = self._eval(value, env)
                if result:
                    return result
            return result
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, ast.Not):
                return not operand
            if isinstance(node.op, ast.USub):
                return -operand
            return +operand
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            try:
                return _BIN_OPS[type(node.op)](left, right)
            except (TypeError, ZeroDivisionError) as exc:
                raise ConditionError(f"arithmetic error in {self.text!r}: {exc}") from exc
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, env)
                try:
                    if not _CMP_OPS[type(op)](left, right):
                        return False
                except TypeError as exc:
                    raise ConditionError(f"comparison error in {self.text!r}: {exc}") from exc
                left = right
            return True
        if isinstance(node, ast.Call):
            name = node.func.id  # type: ignore[union-attr]  # validated at parse
            if name == "defined":
                dotted = _dotted_name(node.args[0])
                return dotted in env
            args = [self._eval(arg, env) for arg in node.args]
            return {"abs": abs, "min": min, "max": max, "len": len, "round": round}[name](*args)
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(element, env) for element in node.elts)
        if isinstance(node, ast.List):
            return [self._eval(element, env) for element in node.elts]
        raise ConditionError(f"unsupported syntax in condition {self.text!r}")

    # -- misc -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Condition) and other.text == self.text

    def __hash__(self) -> int:
        return hash(self.text)

    def __repr__(self) -> str:
        return f"Condition({self.text!r})"


#: A condition that always holds; used for unconditional rules.
TRUE = Condition("True")
