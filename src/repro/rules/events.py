"""Workflow events and the per-instance event table.

Events use the compact token form of the sample workflow packet in the
paper's Figure 7 (``WF1.S  S1.D  S2.D``): ``<scope>.<suffix>`` where the
scope is a step name or ``WF`` and the suffix is one of

====== =====================================
``S``  started (``workflow.start`` for WF)
``D``  done (``step.done`` / ``workflow.done``)
``F``  failed (``step.fail``)
``C``  compensated (``step.compensate`` applied)
``A``  aborted (``workflow.abort``)
====== =====================================

Coordination events injected by the ``AddEvent()`` primitive live in the
``EXT`` scope (``EXT.RO.order1.S3``).

The :class:`EventTable` stores occurrences with their times and supports
the *invalidation* operation central to the paper's recovery scheme: "as
part of the rollback, events corresponding to the completion of steps
which are later rolled back have to be invalidated".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import RuleError

__all__ = [
    "EventOccurrence",
    "EventTable",
    "WF_ABORT",
    "WF_DONE",
    "WF_START",
    "external_event",
    "is_step_done",
    "step_compensated",
    "step_done",
    "step_fail",
    "step_of_token",
]

WF_START = "WF.S"
WF_DONE = "WF.D"
WF_ABORT = "WF.A"


def step_done(step: str) -> str:
    """Token for ``step.done``."""
    return f"{step}.D"


def step_fail(step: str) -> str:
    """Token for ``step.fail``."""
    return f"{step}.F"


def step_compensated(step: str) -> str:
    """Token for a completed compensation of a step."""
    return f"{step}.C"


def external_event(name: str) -> str:
    """Token for an ``AddEvent()``-injected coordination event."""
    return f"EXT.{name}"


def is_step_done(token: str) -> bool:
    return token.endswith(".D") and not token.startswith("WF.") and not token.startswith("EXT.")


def step_of_token(token: str) -> str:
    """The scope (step name or ``WF``/``EXT``) of a token."""
    scope, sep, __ = token.rpartition(".")
    if not sep:
        raise RuleError(f"malformed event token {token!r}")
    return scope


@dataclass
class EventOccurrence:
    """One (possibly invalidated) occurrence of an event.

    ``round`` is the instance's *invalidation round* at posting time
    (bumped by every rollback and loop re-entry).  Invalidations carried by
    messages name a round and only kill occurrences from earlier rounds,
    so a re-established event is never clobbered by a stale cutoff — even
    when both happen at the same simulated instant.
    """

    token: str
    time: float
    seq: int
    valid: bool = True
    round: int = 0


class EventTable:
    """Per-instance table of event occurrences.

    Re-posting a token (e.g. a step re-executed after rollback) replaces
    the previous occurrence.  ``merge`` folds in the event set carried by
    an arriving workflow packet (distributed control), keeping the earliest
    time for already-known valid events.
    """

    def __init__(self) -> None:
        self._events: dict[str, EventOccurrence] = {}
        self._seq = 0
        self._listeners: list = []

    def subscribe(self, listener) -> None:
        """Register ``listener(token, valid)`` for validity transitions.

        The listener fires exactly when a token flips between valid and
        invalid (never on a re-post of an already-valid token), so
        subscribers can maintain incremental state — the rule engine's
        token→rule index counts on the transitions strictly alternating.
        """
        self._listeners.append(listener)

    def _notify(self, token: str, valid: bool) -> None:
        for listener in self._listeners:
            listener(token, valid)

    def post(self, token: str, time: float, round: int = 0) -> EventOccurrence:
        """Record (or re-record, revalidating) an event occurrence."""
        if "." not in token:
            raise RuleError(f"malformed event token {token!r}")
        self._seq += 1
        existing = self._events.get(token)
        newly_valid = existing is None or not existing.valid
        occurrence = EventOccurrence(
            token=token, time=time, seq=self._seq, valid=True, round=round
        )
        self._events[token] = occurrence
        if newly_valid and self._listeners:
            self._notify(token, True)
        return occurrence

    def invalidate(self, tokens: Iterable[str]) -> list[str]:
        """Invalidate the given tokens; returns those actually invalidated."""
        hit = []
        for token in tokens:
            occurrence = self._events.get(token)
            if occurrence is not None and occurrence.valid:
                occurrence.valid = False
                hit.append(token)
                if self._listeners:
                    self._notify(token, False)
        return hit

    def invalidate_before_round(self, token: str, round: int) -> bool:
        """Invalidate ``token`` only if its occurrence belongs to an
        invalidation round strictly before ``round`` — a re-established
        occurrence survives stale cutoffs carried by late messages."""
        occurrence = self._events.get(token)
        if occurrence is not None and occurrence.valid and occurrence.round < round:
            occurrence.valid = False
            if self._listeners:
                self._notify(token, False)
            return True
        return False

    def is_valid(self, token: str) -> bool:
        occurrence = self._events.get(token)
        return occurrence is not None and occurrence.valid

    def occurrence(self, token: str) -> EventOccurrence | None:
        return self._events.get(token)

    def valid_tokens(self) -> frozenset[str]:
        return frozenset(t for t, o in self._events.items() if o.valid)

    @staticmethod
    def _normalize(value) -> tuple[float, int]:
        """Accept a bare time or a ``[time, round]`` pair."""
        if isinstance(value, (int, float)):
            return float(value), 0
        time, round = value
        return float(time), int(round)

    def merge(self, tokens: Mapping[str, object], time: float) -> list[str]:
        """Fold packet-carried events in; returns newly-valid tokens.

        A carried occurrence replaces the local one when the local one is
        invalid or belongs to an older round (the carried one is the
        re-established version).
        """
        added = []
        normalized = {t: self._normalize(v) for t, v in tokens.items()}
        for token, (original_time, round) in sorted(
            normalized.items(), key=lambda kv: (kv[1], kv[0])
        ):
            existing = self._events.get(token)
            replace = (
                existing is None
                or (not existing.valid and round >= existing.round)
                or (existing.valid and round > existing.round)
            )
            if replace:
                newly_valid = existing is None or not existing.valid
                self._seq += 1
                self._events[token] = EventOccurrence(
                    token=token, time=original_time, seq=self._seq, valid=True,
                    round=round,
                )
                if newly_valid:
                    added.append(token)
                    if self._listeners:
                        self._notify(token, True)
        return added

    def export(self) -> dict[str, float]:
        """Valid tokens with their occurrence times."""
        return {t: o.time for t, o in self._events.items() if o.valid}

    def export_versioned(self) -> dict[str, list]:
        """Valid tokens as ``[time, round]`` pairs (packet payload form)."""
        return {t: [o.time, o.round] for t, o in self._events.items() if o.valid}

    def __contains__(self, token: str) -> bool:
        return self.is_valid(token)

    def __iter__(self) -> Iterator[str]:
        return iter(self.valid_tokens())

    def __len__(self) -> int:
        return sum(1 for o in self._events.values() if o.valid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventTable {sorted(self.valid_tokens())}>"
