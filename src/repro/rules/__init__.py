"""Rule-based enactment: events, conditions and the ECA rule engine.

Implements the run-time system sketched in Sections 1 and 3 of the paper:
rules ``(event, condition, action)`` stored per instance, fired when their
events are valid and conditions hold, with the dynamic primitives
``AddRule()``, ``AddEvent()`` and ``AddPrecondition()``.
"""

from repro.rules.conditions import TRUE, Condition
from repro.rules.engine import RuleEngine, RuleInstance
from repro.rules.events import (
    WF_ABORT,
    WF_DONE,
    WF_START,
    EventOccurrence,
    EventTable,
    external_event,
    is_step_done,
    step_compensated,
    step_done,
    step_fail,
    step_of_token,
)

__all__ = [
    "Condition",
    "EventOccurrence",
    "EventTable",
    "RuleEngine",
    "RuleInstance",
    "TRUE",
    "WF_ABORT",
    "WF_DONE",
    "WF_START",
    "external_event",
    "is_step_done",
    "step_compensated",
    "step_done",
    "step_fail",
    "step_of_token",
]
