"""Naive reference rule engine — the pre-index firing loop, retained.

:class:`NaiveRuleEngine` is the original scan-based implementation of the
per-instance ECA engine: every ``_pump`` pass re-sorts the whole rule
table and re-checks ``all(token in events ...)`` for every rule.  It is
O(R log R) per posted event and O(R²) per instance, which is why
:class:`repro.rules.engine.RuleEngine` replaced it with a token→rule
index and a ready-queue.

It is kept (not deleted) for two jobs:

* the **equivalence oracle** — property tests drive random schemas and
  random event/invalidation orders through both engines and assert the
  fired-rule sequences are identical (``tests/rules/test_engine_equivalence``);
* the **benchmark baseline** — ``benchmarks/bench_rule_engine.py``
  measures the indexed engine's event-posting throughput against this
  one on the same schema.

The public surface mirrors :class:`~repro.rules.engine.RuleEngine`
exactly (the three primitives, invalidation, ``pending_rules`` …), so
either class satisfies the same call sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.errors import ConditionError, RuleError
from repro.rules.engine import RuleInstance
from repro.rules.events import EventTable

if TYPE_CHECKING:  # pragma: no cover - break model<->rules import cycle
    from repro.model.compiler import CompiledSchema

__all__ = ["NaiveRuleEngine"]


class NaiveRuleEngine:
    """Scan-based ECA engine: correct, simple, and quadratic."""

    def __init__(
        self,
        compiled: "CompiledSchema",
        action: Callable[[RuleInstance], None],
        env_provider: Callable[[], Mapping[str, Any]],
        steps: Iterable[str] | None = None,
        fire_hook: Callable[[RuleInstance, Any], None] | None = None,
    ):
        self.compiled = compiled
        self.events = EventTable()
        self._action = action
        self._env_provider = env_provider
        self._fire_hook = fire_hook
        self._rules: dict[str, RuleInstance] = {}
        self._pumping = False
        self._dirty = False
        hosted = set(steps) if steps is not None else None
        for template in compiled.rule_templates:
            if hosted is not None and template.step not in hosted:
                continue
            instance = RuleInstance.from_template(
                template, compiled.condition_for(template.rule_id)
            )
            self._rules[instance.rule_id] = instance

    # -- introspection ---------------------------------------------------------

    def rule(self, rule_id: str) -> RuleInstance:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise RuleError(f"unknown rule {rule_id!r}") from None

    def rules_for_step(self, step: str) -> tuple[RuleInstance, ...]:
        return tuple(
            r for r in self._rules.values() if r.step == step and r.kind == "execute"
        )

    def all_rules(self) -> tuple[RuleInstance, ...]:
        return tuple(self._rules.values())

    def pending_rules(self) -> tuple[RuleInstance, ...]:
        return tuple(
            r
            for r in self._rules.values()
            if not r.fired and any(token in self.events for token in r.required)
        )

    def pending_count(self) -> int:
        return len(self.pending_rules())

    # -- the three implementation-level primitives --------------------------------

    def add_rule(self, rule: RuleInstance) -> None:
        if rule.rule_id in self._rules:
            raise RuleError(f"duplicate rule id {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule
        self._pump()

    def add_event(self, token: str, time: float) -> None:
        self.events.post(token, time)
        self._pump()

    def add_precondition(self, rule_id: str, token: str) -> None:
        rule = self.rule(rule_id)
        if rule.fired:
            raise RuleError(
                f"cannot add precondition {token!r} to already-fired rule {rule_id!r}"
            )
        rule.required = rule.required | {token}

    def add_step_precondition(self, step: str, token: str) -> int:
        affected = 0
        for rule in self.rules_for_step(step):
            if not rule.fired:
                rule.required = rule.required | {token}
                affected += 1
        return affected

    # -- event intake ---------------------------------------------------------------

    def post_event(self, token: str, time: float, round: int = 0) -> None:
        self.events.post(token, time, round)
        self._pump()

    def merge_events(self, tokens: Mapping[str, object], time: float) -> list[str]:
        added = self.events.merge(tokens, time)
        if added:
            self._pump()
        return added

    def invalidate_events(self, tokens: Iterable[str]) -> list[str]:
        hit = self.events.invalidate(tokens)
        self._reset_after_invalidation(hit)
        return hit

    def _reset_after_invalidation(self, hit: list[str]) -> None:
        if not hit:
            return
        hit_set = set(hit)
        reset_steps = {
            token[:-2]
            for token in hit_set
            if token.endswith((".D", ".F")) and not token.startswith("EXT.")
        }
        for rule in self._rules.values():
            if rule.fired and (rule.required & hit_set or rule.step in reset_steps):
                rule.fired = False

    def apply_invalidations(self, invalidations: Mapping[str, int]) -> list[str]:
        hit = []
        for token, round in invalidations.items():
            if self.events.invalidate_before_round(token, int(round)):
                hit.append(token)
        self._reset_after_invalidation(hit)
        return hit

    def reset_rules_for_steps(self, steps: Iterable[str]) -> None:
        step_set = set(steps)
        for rule in self._rules.values():
            if rule.step in step_set:
                rule.fired = False

    def remove_rule(self, rule_id: str) -> None:
        self._rules.pop(rule_id, None)

    def reevaluate(self) -> None:
        self._pump()

    # -- firing ------------------------------------------------------------------------

    def _pump(self) -> None:
        """Fire rules to fix-point by rescanning the sorted rule table."""
        if self._pumping:
            self._dirty = True
            return
        self._pumping = True
        iterations = 0
        try:
            progress = True
            while progress:
                iterations += 1
                if iterations > 10_000:
                    raise RuleError(
                        "rule engine failed to reach a fix-point after 10000 "
                        "iterations — a rule action is re-arming its own rule"
                    )
                self._dirty = False
                progress = False
                for rule in sorted(self._rules.values(), key=lambda r: r.rule_id):
                    if rule.fired or not rule.ready(self.events):
                        continue
                    if not self._condition_holds(rule):
                        continue
                    rule.fired = True
                    if self._fire_hook is not None:
                        self._fire_hook(rule, self)
                    self._action(rule)
                    progress = True
                    if rule.one_shot:
                        self._rules.pop(rule.rule_id, None)
                if self._dirty:
                    progress = True
        finally:
            self._pumping = False

    def _condition_holds(self, rule: RuleInstance) -> bool:
        if rule.condition is None:
            return True
        env = self._env_provider()
        try:
            return rule.condition.evaluate(env)
        except ConditionError:
            return False
