"""The per-instance ECA rule engine.

Each workflow instance is enacted by rules: "Rules are fired only after
examining that their conditions evaluate to true.  When a rule is fired it
triggers the execution of a step."  A rule waits in the *pending-rule
table* until every required event is valid in the event table.

The engine exposes the paper's three implementation-level primitives used
to satisfy coordinated-execution requirements:

* ``AddRule()``    — :meth:`RuleEngine.add_rule`
* ``AddEvent()``   — :meth:`RuleEngine.add_event`
* ``AddPrecondition()`` — :meth:`RuleEngine.add_precondition`

and the *invalidation* operation used by failure handling: invalidating
events resets any rule (fired or pending) that depended on them, so the
re-executed thread can re-trigger it — "rules in the pending rule table
from which the invalidated step.done events have been deleted are
discarded to ensure that incorrect rules will not be fired".

The engine is deliberately architecture-neutral: a central engine keeps
one per instance; a distributed agent keeps one per instance *fragment* it
participates in, fed by workflow packets.

Firing is **incremental** (a discrimination-network approach): a reverse
index ``event token → rule ids`` is built at construction, each rule
caches an *unmet-event counter*, and validity transitions in the event
table (delivered through :meth:`EventTable.subscribe`) decrement/increment
those counters.  A rule whose counter reaches zero enters a rule-id-keyed
ready-heap; :meth:`_pump` pops only those candidates instead of rescanning
the whole rule table.  The firing order is bit-identical to the original
scan-based loop (kept as :class:`repro.rules.reference.NaiveRuleEngine`):
see ``_pump`` for the pass/cursor discipline that preserves it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.errors import ConditionError, RuleError
from repro.rules.conditions import Condition
from repro.rules.events import EventTable

if TYPE_CHECKING:  # pragma: no cover - break model<->rules import cycle
    from repro.model.compiler import CompiledSchema, RuleTemplate

__all__ = ["RuleEngine", "RuleInstance"]


@dataclass
class RuleInstance:
    """A live rule: template state plus dynamic preconditions and firing state.

    ``kind`` is ``"execute"``, ``"loop"`` or any engine-defined action verb
    for dynamically added rules (e.g. ``"notify"`` used by coordinated
    execution).  ``payload`` carries action-specific data for dynamic rules.

    ``required`` and ``fired`` must only be mutated through the owning
    :class:`RuleEngine` (``add_precondition``, invalidation/reset paths) —
    the engine keeps an unmet-event counter per rule that would go stale
    otherwise.
    """

    rule_id: str
    kind: str
    step: str
    required: frozenset[str]
    condition: Condition | None = None
    loop_target: str | None = None
    loop_body: frozenset[str] = frozenset()
    payload: dict[str, Any] = field(default_factory=dict)
    one_shot: bool = False
    fired: bool = False

    @classmethod
    def from_template(
        cls, template: "RuleTemplate", condition: Condition | None
    ) -> "RuleInstance":
        return cls(
            rule_id=template.rule_id,
            kind=template.kind,
            step=template.step,
            required=template.events,
            condition=condition,
            loop_target=template.loop_target,
            loop_body=template.loop_body,
        )

    def ready(self, events: EventTable) -> bool:
        return all(token in events for token in self.required)


class RuleEngine:
    """Event table + rule tables + firing loop for one workflow instance.

    ``action`` is invoked for every fired rule; it must not re-enter the
    engine synchronously except through the documented entry points
    (``post_event``/``add_event``/``merge_events``), which are re-entrancy
    safe because firing is driven by a single fix-point pump.
    """

    def __init__(
        self,
        compiled: "CompiledSchema",
        action: Callable[[RuleInstance], None],
        env_provider: Callable[[], Mapping[str, Any]],
        steps: Iterable[str] | None = None,
        fire_hook: Callable[[RuleInstance, "RuleEngine"], None] | None = None,
        profile: Any | None = None,
    ):
        """``steps`` restricts which rule templates are instantiated — a
        distributed agent only materializes the rules of steps it hosts.
        ``fire_hook`` is an observability callback invoked after each rule
        fires (before its action runs) with the rule and this engine; the
        engines use it to emit rule-firing spans and sample the
        pending-rule-table depth.  ``profile`` is a duck-typed profiler
        (see :class:`repro.obs.profile.Profiler`); when set, every pump
        runs inside a ``rules.pump`` frame and every firing inside a
        ``rules.fire`` frame."""
        self.compiled = compiled
        self.events = EventTable()
        self._action = action
        self._env_provider = env_provider
        self._fire_hook = fire_hook
        self.profile = profile
        self._rules: dict[str, RuleInstance] = {}
        self._pumping = False
        self._dirty = False
        # Reverse index and incremental firing state.
        self._index: dict[str, set[str]] = {}
        self._unmet: dict[str, int] = {}
        self._ready: list[str] = []       # heap of candidate rule ids
        self._queued: set[str] = set()    # ids currently in heap/deferred
        self._pending_ids: set[str] = set()
        self._added_mid_pass: list[str] = []
        self._new_this_pass: set[str] = set()
        self.events.subscribe(self._on_event_transition)
        hosted = set(steps) if steps is not None else None
        for template in compiled.rule_templates:
            if hosted is not None and template.step not in hosted:
                continue
            instance = RuleInstance.from_template(
                template, compiled.condition_for(template.rule_id)
            )
            self._rules[instance.rule_id] = instance
            self._index_rule(instance)

    # -- index maintenance -----------------------------------------------------

    def _index_rule(self, rule: RuleInstance) -> None:
        """Index a newly installed rule and seed its unmet counter."""
        rule_id = rule.rule_id
        for token in rule.required:
            self._index.setdefault(token, set()).add(rule_id)
        self._unmet[rule_id] = sum(
            1 for token in rule.required if token not in self.events
        )
        if self._pumping:
            # Mirrors the scan engine's per-pass snapshot: a rule added from
            # inside a rule action only becomes fireable on the *next* pass,
            # even if its events complete later in the current one.
            self._new_this_pass.add(rule_id)
        self._refresh_pending(rule)
        if self._unmet[rule_id] == 0 and not rule.fired:
            self._enqueue(rule_id)

    def _unindex_rule(self, rule: RuleInstance) -> None:
        rule_id = rule.rule_id
        for token in rule.required:
            ids = self._index.get(token)
            if ids is not None:
                ids.discard(rule_id)
                if not ids:
                    del self._index[token]
        self._unmet.pop(rule_id, None)
        self._pending_ids.discard(rule_id)
        # A stale heap entry (if any) is discarded lazily on pop.

    def _enqueue(self, rule_id: str) -> None:
        if rule_id in self._queued:
            return
        self._queued.add(rule_id)
        if self._pumping and rule_id in self._new_this_pass:
            self._added_mid_pass.append(rule_id)
        else:
            heapq.heappush(self._ready, rule_id)

    def _refresh_pending(self, rule: RuleInstance) -> None:
        """The paper's pending-rule table: unfired, ≥1 required event valid."""
        if (
            not rule.fired
            and rule.required
            and self._unmet[rule.rule_id] < len(rule.required)
        ):
            self._pending_ids.add(rule.rule_id)
        else:
            self._pending_ids.discard(rule.rule_id)

    def _on_event_transition(self, token: str, valid: bool) -> None:
        """EventTable delta: adjust unmet counters of rules needing ``token``."""
        ids = self._index.get(token)
        if not ids:
            return
        delta = -1 if valid else 1
        for rule_id in ids:
            unmet = self._unmet[rule_id] + delta
            self._unmet[rule_id] = unmet
            rule = self._rules[rule_id]
            self._refresh_pending(rule)
            if unmet == 0 and not rule.fired:
                self._enqueue(rule_id)

    def _rearm(self, rule: RuleInstance) -> None:
        """Reset a rule's fired flag and requeue it if already satisfied."""
        rule.fired = False
        self._refresh_pending(rule)
        if self._unmet[rule.rule_id] == 0:
            self._enqueue(rule.rule_id)

    # -- introspection ---------------------------------------------------------

    def rule(self, rule_id: str) -> RuleInstance:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise RuleError(f"unknown rule {rule_id!r}") from None

    def rules_for_step(self, step: str) -> tuple[RuleInstance, ...]:
        return tuple(
            r for r in self._rules.values() if r.step == step and r.kind == "execute"
        )

    def all_rules(self) -> tuple[RuleInstance, ...]:
        return tuple(self._rules.values())

    def pending_rules(self) -> tuple[RuleInstance, ...]:
        """Unfired rules with at least one required event already valid —
        the paper's pending-rule table.  O(pending), not O(rules)."""
        return tuple(
            self._rules[rule_id] for rule_id in sorted(self._pending_ids)
        )

    def pending_count(self) -> int:
        """Depth of the pending-rule table, O(1) (observability sampling)."""
        return len(self._pending_ids)

    # -- the three implementation-level primitives --------------------------------

    def add_rule(self, rule: RuleInstance) -> None:
        """``AddRule()``: install a (dynamic) rule and evaluate immediately."""
        if rule.rule_id in self._rules:
            raise RuleError(f"duplicate rule id {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule
        self._index_rule(rule)
        self._pump()

    def add_event(self, token: str, time: float) -> None:
        """``AddEvent()``: post an (external) event and fire eligible rules."""
        self.events.post(token, time)
        self._pump()

    def add_precondition(self, rule_id: str, token: str) -> None:
        """``AddPrecondition()``: require one more event before a rule fires.

        Rejected for already-fired rules — a precondition added after the
        fact cannot be honoured and indicates a protocol race upstream.
        """
        rule = self.rule(rule_id)
        if rule.fired:
            raise RuleError(
                f"cannot add precondition {token!r} to already-fired rule {rule_id!r}"
            )
        self._add_precondition(rule, token)

    def _add_precondition(self, rule: RuleInstance, token: str) -> None:
        if token in rule.required:
            return
        rule.required = rule.required | {token}
        self._index.setdefault(token, set()).add(rule.rule_id)
        if token not in self.events:
            self._unmet[rule.rule_id] += 1
        self._refresh_pending(rule)
        # A now-unsatisfied heap entry is discarded lazily on pop.

    def add_step_precondition(self, step: str, token: str) -> int:
        """Add a precondition to every unfired execute-rule of ``step``.

        Returns the number of rules affected (0 when the step's rules all
        fired already).
        """
        affected = 0
        for rule in self.rules_for_step(step):
            if not rule.fired:
                self._add_precondition(rule, token)
                affected += 1
        return affected

    # -- event intake ---------------------------------------------------------------

    def post_event(self, token: str, time: float, round: int = 0) -> None:
        """Record an internal event occurrence and fire eligible rules."""
        self.events.post(token, time, round)
        self._pump()

    def merge_events(self, tokens: Mapping[str, object], time: float) -> list[str]:
        """Fold a workflow packet's event set in; fires eligible rules."""
        added = self.events.merge(tokens, time)
        if added:
            self._pump()
        return added

    def invalidate_events(self, tokens: Iterable[str]) -> list[str]:
        """Invalidate events and reset every rule that depended on them."""
        hit = self.events.invalidate(tokens)
        self._reset_after_invalidation(hit)
        return hit

    def _reset_after_invalidation(self, hit: list[str]) -> None:
        """Re-arm rules affected by invalidated tokens.

        Two kinds of rules reset: rules *depending* on an invalidated event
        (they fired from now-stale state), and the execute/loop rules *of*
        a step whose own done/fail event was invalidated — invalidation
        means the step's completion no longer stands, so it must be able to
        re-fire during re-execution.
        """
        if not hit:
            return
        hit_set = set(hit)
        reset_steps = {
            token[:-2]
            for token in hit_set
            if token.endswith((".D", ".F")) and not token.startswith("EXT.")
        }
        for rule in self._rules.values():
            if rule.fired and (rule.required & hit_set or rule.step in reset_steps):
                self._rearm(rule)

    def apply_invalidations(self, invalidations: Mapping[str, int]) -> list[str]:
        """Apply message-carried invalidations (token -> invalidation round).

        A token is invalidated only when the local occurrence belongs to an
        *earlier* round, so a re-established event survives stale messages.
        Rules depending on invalidated tokens (and the rules of steps whose
        own completion events were invalidated) are re-armed.
        """
        hit = []
        for token, round in invalidations.items():
            if self.events.invalidate_before_round(token, int(round)):
                hit.append(token)
        self._reset_after_invalidation(hit)
        return hit

    def reset_rules_for_steps(self, steps: Iterable[str]) -> None:
        """Re-arm the execute-rules of the given steps (used on rollback)."""
        step_set = set(steps)
        for rule in self._rules.values():
            if rule.step in step_set:
                self._rearm(rule)

    def remove_rule(self, rule_id: str) -> None:
        rule = self._rules.pop(rule_id, None)
        if rule is not None:
            self._unindex_rule(rule)

    def reevaluate(self) -> None:
        """Re-run the firing loop (after invalidation/reset operations)."""
        self._pump()

    # -- firing ------------------------------------------------------------------------

    def _pump(self) -> None:
        """Fire ready rules to fix-point.  Re-entrant calls mark dirtiness.

        Pops candidates off the rule-id-keyed ready-heap instead of
        rescanning the rule table, while reproducing the scan engine's
        observable order exactly:

        * within a pass, rules fire in ascending rule-id order (``cursor``
          tracks the last-fired id; a candidate at or behind it — e.g. one
          re-armed by an invalidation inside an action — waits for the
          next pass, just as the sorted scan would only revisit it on its
          next sweep);
        * a candidate whose condition is false is deferred to the next
          pass and re-checked for as long as passes continue (the scan
          re-evaluated it every sweep);
        * a new pass starts whenever this one fired anything or a
          re-entrant entry-point call flagged ``_dirty``.
        """
        if self._pumping:
            self._dirty = True
            return
        profile = self.profile
        if profile is not None:
            profile.push("rules.pump")
        try:
            self._run_pump(profile)
        finally:
            if profile is not None:
                profile.pop()

    def _run_pump(self, profile: Any | None) -> None:
        self._pumping = True
        passes = 0
        try:
            while True:
                passes += 1
                if passes > 10_000:
                    raise RuleError(
                        "rule engine failed to reach a fix-point after 10000 "
                        "iterations — a rule action is re-arming its own rule"
                    )
                self._dirty = False
                fired_any = False
                cursor: str | None = None
                deferred: list[str] = []
                while self._ready:
                    rule_id = heapq.heappop(self._ready)
                    rule = self._rules.get(rule_id)
                    if (
                        rule is None
                        or rule.fired
                        or self._unmet.get(rule_id, 1) > 0
                    ):
                        self._queued.discard(rule_id)  # stale entry
                        continue
                    if cursor is not None and rule_id <= cursor:
                        deferred.append(rule_id)
                        continue
                    if not self._condition_holds(rule):
                        deferred.append(rule_id)
                        continue
                    self._queued.discard(rule_id)
                    rule.fired = True
                    self._pending_ids.discard(rule_id)
                    cursor = rule_id
                    fired_any = True
                    if self._fire_hook is not None:
                        self._fire_hook(rule, self)
                    if profile is None:
                        self._action(rule)
                    else:
                        profile.push("rules.fire")
                        try:
                            self._action(rule)
                        finally:
                            profile.pop()
                    if rule.one_shot:
                        self._rules.pop(rule_id, None)
                        self._unindex_rule(rule)
                for rule_id in deferred:
                    heapq.heappush(self._ready, rule_id)
                if self._added_mid_pass:
                    for rule_id in self._added_mid_pass:
                        heapq.heappush(self._ready, rule_id)
                    self._added_mid_pass.clear()
                self._new_this_pass.clear()
                if not (fired_any or self._dirty):
                    break
        finally:
            self._pumping = False

    def _condition_holds(self, rule: RuleInstance) -> bool:
        if rule.condition is None:
            return True
        env = self._env_provider()
        try:
            return rule.condition.evaluate(env)
        except ConditionError:
            # Referenced data not (yet) bound: the rule is not firable now;
            # it will be re-evaluated when further events/data arrive.
            return False
