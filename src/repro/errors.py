"""Exception hierarchy for the CREW workflow management library.

Every error raised by this package derives from :class:`CrewError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class CrewError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(CrewError):
    """A workflow schema is structurally malformed (bad arcs, steps, refs)."""


class ValidationError(SchemaError):
    """Schema validation rejected a complete-but-inconsistent definition."""


class CompilationError(SchemaError):
    """The schema compiler could not derive rules or navigation metadata."""


class ConditionError(CrewError):
    """A rule or arc condition failed to parse or to evaluate."""


class RuleError(CrewError):
    """The ECA rule engine was driven into an illegal state."""


class StorageError(CrewError):
    """A workflow/agent database operation failed (missing row, bad key)."""


class RecoveryError(CrewError):
    """Rollback, thread halting or compensation could not be carried out."""


class CoordinationError(CrewError):
    """A coordinated-execution requirement could not be enforced."""


class ProtocolError(CrewError):
    """An inter-node message violated a workflow-interface contract."""


class SimulationError(CrewError):
    """The discrete-event simulation kernel was misused."""


class ParameterError(SimulationError, ValueError):
    """A runtime/transport knob was configured with an illegal value.

    Doubly rooted: it *is* a :class:`ValueError` (the natural contract for
    bad constructor arguments — negative latencies, inverted bounds) while
    remaining catchable as :class:`SimulationError`/:class:`CrewError` by
    callers that treat all library failures uniformly.
    """


class WorkloadError(CrewError):
    """Workload generation received inconsistent parameters."""


class LawsSyntaxError(CrewError):
    """The LAWS specification text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LawsSemanticError(CrewError):
    """A parsed LAWS specification refers to undefined steps/schemas."""


class FrontEndError(CrewError):
    """An administrative request (start/abort/status) was rejected."""


class AdmissionError(FrontEndError):
    """A submission was refused by the service's admission controller.

    Carries everything an HTTP front door needs to shape the refusal:
    ``code`` is a stable machine-readable slug (``"rate-limited"``,
    ``"queue-full"``, ``"draining"``), ``status`` the suggested HTTP
    status, and ``retry_after`` the earliest sensible retry in seconds
    (``None`` when retrying is pointless, e.g. while draining).
    """

    def __init__(self, message: str, code: str, status: int = 429,
                 retry_after: float | None = None):
        super().__init__(message)
        self.code = code
        self.status = status
        self.retry_after = retry_after


class InjectedFault(SimulationError):
    """A deliberately injected failure (chaos plans), always transient.

    Raised by a retrying executor when the installed fault plan's
    ``exec_fail_p`` dimension fires; the executor's normal retry/backoff
    path handles it exactly like a real transient step failure.
    """
