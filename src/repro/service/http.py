"""Hand-rolled HTTP/1.1 front door for :class:`WorkflowService`.

The daemon speaks a deliberately tiny, dependency-free subset of HTTP
over :func:`asyncio.start_server` — enough for ``curl`` and the standard
library client, no more:

================================  =====================================
``GET /healthz``                  liveness: status summary (always 200)
``GET /readyz``                   readiness: 200 only when serving
``GET /version``                  package version
``POST /workflows``               submit (LAWS text or schema JSON)
``GET /instances``                all instances, submission order
``GET /instances/<id>``           one instance's status
``GET /instances/<id>/events``    live NDJSON event stream
``GET /events``                   firehose NDJSON stream (all instances)
``GET /metrics``                  Prometheus exposition scrape
``GET /debug/trace``              ``repro analyze``-compatible JSONL
``GET /debug/profile``            collapsed flamegraph stacks
``POST /debug/faults``            install a chaos plan (gated, see below)
``GET /debug/faults``             installed plan + fault decision stats
``POST /admin/drain``             begin graceful drain (load shedding)
================================  =====================================

``POST /workflows`` accepts a JSON object with either ``laws`` (LAWS
source text) or ``schema`` (a schema-JSON document, see
:func:`~repro.service.core.schema_from_dict`), plus optional
``workflow`` (class name), ``inputs`` (mapping) and ``instances``
(count).  Event streams respond with ``Content-Type:
application/x-ndjson`` and close when the instance finishes (or at
service shutdown for the firehose); a client hanging up mid-stream is
detected via connection EOF and its queue detached immediately.

``/healthz`` answers *liveness* (the process and loop are up) and always
returns 200; ``/readyz`` answers *readiness* (accepting traffic) — 503
before :meth:`WorkflowService.start` completes and during graceful
drain.  The observability surfaces return 503 with a hint when the
service was started with observability disabled.

Every error response is a JSON envelope ``{"error": {"code", "message"}}``
with a stable machine-readable ``code`` slug; admission refusals (429 /
503) additionally carry a ``Retry-After`` header.  ``POST /workflows``
accepts optional ``deadline_s``: instances still running that many
seconds after submission are aborted and reported ``deadline-exceeded``.
``/debug/faults`` is refused (403) unless the daemon was started with
``--enable-fault-endpoint`` — the plan it installs crashes nodes and
loses messages, so the flag must never leave a chaos rig.

Responses carry ``Connection: close`` — one request per connection keeps
the parser honest and is plenty for a local control plane.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import AdmissionError, CrewError, FrontEndError, WorkloadError
from repro.service.core import WorkflowService

__all__ = ["serve", "start_server"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Default machine-readable error codes per status (the envelope's
#: ``error.code`` when the raiser did not pick a more specific one).
_DEFAULT_CODES = {
    400: "bad-request",
    403: "forbidden",
    404: "not-found",
    405: "method-not-allowed",
    409: "conflict",
    413: "payload-too-large",
    429: "rate-limited",
    500: "internal",
    503: "unavailable",
    504: "deadline-exceeded",
}

#: Prometheus text exposition content type (the version tag matters to
#: strict scrapers).
_PROM_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_NDJSON_TYPE = "application/x-ndjson"


def _version() -> str:
    from repro import __version__

    return __version__


class _HttpError(Exception):
    def __init__(self, status: int, message: str, code: str | None = None,
                 retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code if code is not None else _DEFAULT_CODES.get(
            status, "error"
        )
        self.retry_after = retry_after

    def response(self) -> bytes:
        """The standard JSON error envelope for this error."""
        headers = None
        if self.retry_after is not None:
            headers = {"Retry-After": f"{self.retry_after:g}"}
        return _response(
            self.status,
            {"error": {"code": self.code, "message": self.message}},
            headers=headers,
        )


def _response(
    status: int, payload: dict[str, Any], *, headers: dict[str, str] | None = None
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _text_response(status: int, text: str, content_type: str) -> bytes:
    """A non-JSON body (Prometheus exposition, JSONL dumps, stacks)."""
    body = text.encode()
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, Any] | None]:
    """Parse one request; returns ``(method, path, json_body_or_None)``."""
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    request_line, *header_lines = head.decode("latin-1").split("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line {request_line!r}")
    method, path, __ = parts
    content_length = 0
    for line in header_lines:
        name, sep, value = line.partition(":")
        if sep and name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
    if content_length > _MAX_BODY_BYTES:
        raise _HttpError(413, "request body too large")
    body: dict[str, Any] | None = None
    if content_length:
        raw = await reader.readexactly(content_length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") from None
        if not isinstance(body, dict):
            raise _HttpError(400, "request body must be a JSON object")
    return method, path.split("?", 1)[0], body


async def _stream_events(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    service: WorkflowService,
    instance_id: str | None,
) -> None:
    """Pump one NDJSON event stream until it ends or the client hangs up.

    ``instance_id=None`` selects the firehose (every instance's events).
    The connection is one-request-per-connection, so any further read
    resolving (EOF, or a stray byte) means the client went away; the
    subscriber queue is detached in ``finally`` either way — a
    disconnected client must not leave its queue accumulating events
    until the instance finishes.
    """
    if instance_id is None:
        queue = service.subscribe_events()
    else:
        queue = service.subscribe(instance_id)
    eof_task = asyncio.ensure_future(reader.read(1))
    try:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        while True:
            get_task = asyncio.ensure_future(queue.get())
            done, __ = await asyncio.wait(
                {get_task, eof_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if eof_task in done:
                get_task.cancel()
                return
            event = get_task.result()
            if event is None:
                return
            writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
            await writer.drain()
    finally:
        eof_task.cancel()
        if instance_id is None:
            service.unsubscribe_events(queue)
        else:
            service.unsubscribe(instance_id, queue)


async def _dispatch(
    service: WorkflowService,
    method: str,
    path: str,
    body: dict[str, Any] | None,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> bytes | None:
    """Route one request; returns a full response, or ``None`` if the
    handler streamed the response itself."""
    if path == "/healthz":
        if method != "GET":
            raise _HttpError(405, "use GET")
        return _response(200, service.status())
    if path == "/readyz":
        if method != "GET":
            raise _HttpError(405, "use GET")
        ready, reason = service.readiness()
        return _response(200 if ready else 503,
                         {"ready": ready, "reason": reason})
    if path == "/metrics":
        if method != "GET":
            raise _HttpError(405, "use GET")
        try:
            return _text_response(200, service.metrics_text(), _PROM_TYPE)
        except WorkloadError as exc:
            raise _HttpError(503, str(exc)) from None
    if path == "/debug/trace":
        if method != "GET":
            raise _HttpError(405, "use GET")
        try:
            return _text_response(200, service.trace_jsonl(), _NDJSON_TYPE)
        except WorkloadError as exc:
            raise _HttpError(503, str(exc)) from None
    if path == "/debug/profile":
        if method != "GET":
            raise _HttpError(405, "use GET")
        try:
            return _text_response(
                200, service.profile_collapsed(), "text/plain; charset=utf-8"
            )
        except WorkloadError as exc:
            raise _HttpError(503, str(exc)) from None
    if path == "/events":
        if method != "GET":
            raise _HttpError(405, "use GET")
        await _stream_events(reader, writer, service, None)
        return None
    if path == "/instances":
        if method != "GET":
            raise _HttpError(405, "use GET")
        return _response(200, {"instances": service.instances()})
    if path == "/version":
        if method != "GET":
            raise _HttpError(405, "use GET")
        return _response(200, {"version": _version()})
    if path == "/workflows":
        if method != "POST":
            raise _HttpError(405, "use POST")
        if body is None:
            raise _HttpError(400, "POST /workflows needs a JSON body")
        try:
            instances = int(body.get("instances", 1))
            deadline = body.get("deadline_s")
            deadline_s = None if deadline is None else float(deadline)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad submission field: {exc}") from None
        try:
            result = service.submit(
                laws=body.get("laws"),
                schema=body.get("schema"),
                workflow=body.get("workflow"),
                inputs=body.get("inputs"),
                instances=instances,
                deadline_s=deadline_s,
            )
        except AdmissionError as exc:
            raise _HttpError(exc.status, str(exc), code=exc.code,
                             retry_after=exc.retry_after) from None
        except CrewError as exc:
            raise _HttpError(400, str(exc)) from None
        return _response(200, result)
    if path == "/debug/faults":
        if method == "GET":
            try:
                return _response(200, service.fault_stats())
            except CrewError as exc:
                raise _HttpError(403, str(exc),
                                 code="fault-endpoint-disabled") from None
        if method != "POST":
            raise _HttpError(405, "use GET or POST")
        if body is None or "plan" not in body:
            raise _HttpError(
                400, "POST /debug/faults needs a JSON body with 'plan' "
                     "(a fault-plan spec string)"
            )
        try:
            return _response(200, service.install_faults(str(body["plan"])))
        except FrontEndError as exc:
            raise _HttpError(403, str(exc),
                             code="fault-endpoint-disabled") from None
        except WorkloadError as exc:
            raise _HttpError(409, str(exc)) from None
        except CrewError as exc:
            raise _HttpError(400, str(exc)) from None
    if path == "/admin/drain":
        if method != "POST":
            raise _HttpError(405, "use POST")
        service.begin_drain()
        return _response(200, {"draining": True})
    if path.startswith("/instances/"):
        if method != "GET":
            raise _HttpError(405, "use GET")
        rest = path[len("/instances/"):]
        if rest.endswith("/events"):
            instance_id = rest[: -len("/events")]
            try:
                await _stream_events(reader, writer, service, instance_id)
            except CrewError as exc:
                raise _HttpError(404, str(exc)) from None
            return None
        try:
            return _response(200, service.instance(rest))
        except CrewError as exc:
            raise _HttpError(404, str(exc)) from None
    raise _HttpError(404, f"no route for {path!r}")


def _make_handler(service: WorkflowService):
    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        method, path, status = "-", "-", 200
        try:
            try:
                method, path, body = await _read_request(reader)
                result = await _dispatch(service, method, path, body,
                                         reader, writer)
            except _HttpError as exc:
                status = exc.status
                result = exc.response()
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # pragma: no cover - defensive
                status = 500
                result = _response(
                    500, {"error": {"code": "internal", "message": repr(exc)}}
                )
            if result is not None:
                writer.write(result)
                await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            service.logger.debug("http.request", method=method, path=path,
                                 status=status)
            writer.close()

    return handle


async def start_server(
    service: WorkflowService, host: str = "127.0.0.1", port: int = 8450
) -> asyncio.AbstractServer:
    """Bind the front door and start the service's background machinery."""
    service.start()
    return await asyncio.start_server(_make_handler(service), host, port)


async def serve(
    service: WorkflowService,
    host: str = "127.0.0.1",
    port: int = 8450,
    ready: asyncio.Event | None = None,
) -> None:
    """Run the daemon until cancelled (the ``repro serve`` entry point)."""
    server = await start_server(service, host, port)
    if ready is not None:
        ready.set()
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.close()
