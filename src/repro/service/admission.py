"""Admission control for the serve daemon's submission path.

The paper's front end accepts every request and lets the engines queue;
a real daemon needs the queue-based load-leveling / throttling patterns
of ROADMAP item #2: refuse work it cannot take *now* with enough
information for a well-behaved client to come back later.  Three gates,
checked in order by :meth:`AdmissionController.admit`:

1. **Drain shedding** — once graceful drain has begun, every submission
   is refused with a 503-shaped :class:`~repro.errors.AdmissionError`
   (``code="draining"``, no ``retry_after``: this incarnation will not
   take the work).
2. **Bounded in-flight queue** — ``max_inflight`` caps instances that
   have been acknowledged but not finished.  Over the cap the refusal is
   429-shaped (``code="queue-full"``) with ``retry_after`` estimated
   from the service's recent instance latency.
3. **Token bucket** — ``rate`` tokens/second with ``burst`` capacity,
   one token per instance.  Refusals are 429-shaped
   (``code="rate-limited"``) with ``retry_after`` the exact time until
   the bucket refills enough.

All three outcomes are counted in :class:`AdmissionStats` (surfaced as
``crew_admission_*`` metrics) and logged by the service as structured
``admission.rejected`` events; the HTTP front door translates the error
into a JSON error envelope plus a ``Retry-After`` header.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import AdmissionError, ParameterError

__all__ = ["AdmissionController", "AdmissionStats", "TokenBucket"]


class TokenBucket:
    """Continuous-refill token bucket (``rate``/s, ``burst`` capacity)."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ParameterError(f"token bucket rate must be > 0, got {rate}")
        if burst < 1:
            raise ParameterError(f"token bucket burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp: float | None = None

    def _refill(self, now: float) -> None:
        if self._stamp is not None and now > self._stamp:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, now: float, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; returns 0.0 on success, else the
        seconds until the bucket will hold enough (nothing is taken)."""
        self._refill(now)
        if tokens <= self._tokens:
            self._tokens -= tokens
            return 0.0
        deficit = min(tokens, self.burst) - self._tokens
        return deficit / self.rate

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass
class AdmissionStats:
    """Counters for every admission decision (scrape surface)."""

    accepted: int = 0
    rejected_draining: int = 0
    rejected_queue_full: int = 0
    rejected_rate_limited: int = 0
    deadline_exceeded: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class AdmissionController:
    """Gatekeeper for submissions: drain shedding, queue bound, rate limit.

    With every knob left ``None`` the controller still sheds load during
    drain — a draining daemon must never acknowledge work it will not
    finish — but imposes no queue bound or rate limit.
    """

    #: Fallback Retry-After when no latency estimate exists yet (s).
    DEFAULT_RETRY_AFTER = 1.0

    def __init__(
        self,
        max_inflight: int | None = None,
        rate: float | None = None,
        burst: int | None = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ParameterError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self.bucket = (
            None if rate is None
            else TokenBucket(rate, burst if burst is not None else max(rate, 1.0))
        )
        self.stats = AdmissionStats()
        #: EWMA of recent instance latency, fed by the service's outcome
        #: watcher; drives the queue-full Retry-After estimate.
        self._latency_ewma: float | None = None

    def note_latency(self, seconds: float) -> None:
        """Feed one finished instance's end-to-end latency into the EWMA."""
        if self._latency_ewma is None:
            self._latency_ewma = seconds
        else:
            self._latency_ewma = 0.8 * self._latency_ewma + 0.2 * seconds

    def _retry_after_queue(self) -> float:
        if self._latency_ewma is None:
            return self.DEFAULT_RETRY_AFTER
        # Half a typical instance lifetime: by then some of the queue has
        # drained with high probability, without synchronised client herds.
        return max(0.05, round(self._latency_ewma / 2, 3))

    def admit(self, now: float, running: int, count: int, draining: bool) -> None:
        """Admit ``count`` new instances or raise :class:`AdmissionError`."""
        if draining:
            self.stats.rejected_draining += count
            raise AdmissionError(
                "service is draining and no longer accepts submissions; "
                "retry against a live replica",
                code="draining", status=503, retry_after=None,
            )
        if (self.max_inflight is not None
                and running + count > self.max_inflight):
            self.stats.rejected_queue_full += count
            raise AdmissionError(
                f"submission of {count} instance(s) would exceed the "
                f"in-flight bound ({running} running, max "
                f"{self.max_inflight}); retry later",
                code="queue-full", status=429,
                retry_after=self._retry_after_queue(),
            )
        if self.bucket is not None:
            wait = self.bucket.try_take(now, float(count))
            if wait > 0:
                self.stats.rejected_rate_limited += count
                raise AdmissionError(
                    f"submission rate limit exceeded ({self.bucket.rate}/s, "
                    f"burst {self.bucket.burst:g}); retry in {wait:.3f}s",
                    code="rate-limited", status=429,
                    retry_after=round(wait, 3),
                )
        self.stats.accepted += count
