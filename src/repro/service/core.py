"""Engine-facing core of the ``repro serve`` daemon.

:class:`WorkflowService` owns one control system (any of the paper's
three architectures) mounted on the wall-clock asyncio runtime
(:class:`~repro.runtime.realtime.RealtimeRuntime`), and exposes the
operations the HTTP front door needs: submit a workflow (LAWS text or a
schema-JSON document), query an instance's status, and subscribe to its
live event stream (tapped off the engine trace via
:attr:`repro.runtime.trace.Trace.listener`).

Submissions are idempotent at the document level: the same LAWS text (or
the same schema JSON) installs its workflow classes once and then only
starts new instances.  Event subscribers get per-instance
:class:`asyncio.Queue` feeds terminated by ``None`` once the instance
reaches an outcome; a background watcher closes streams for instances
that finish without a final trace record mentioning them.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from typing import Any

from repro.engines import (
    CentralizedControlSystem,
    DistributedControlSystem,
    ParallelControlSystem,
    SystemConfig,
)
from repro.errors import FrontEndError, SchemaError, WorkloadError
from repro.laws import load_laws
from repro.model import SchemaBuilder
from repro.runtime.latency import FixedLatency
from repro.runtime.realtime import RealtimeRuntime

__all__ = ["WorkflowService", "schema_from_dict"]

_ARCHITECTURES = {
    "centralized": CentralizedControlSystem,
    "parallel": ParallelControlSystem,
    "distributed": DistributedControlSystem,
}

#: How often the background watcher sweeps for finished instances (s).
_WATCH_INTERVAL = 0.05


def schema_from_dict(payload: dict[str, Any]):
    """Build a :class:`~repro.model.schema.WorkflowSchema` from JSON.

    The document mirrors the :class:`~repro.model.SchemaBuilder` surface::

        {"name": "Orders", "inputs": ["part", "qty"],
         "steps": [{"name": "Check", "program": "ord.check",
                    "inputs": ["WF.part"], "outputs": ["ok"],
                    "cost": 1.0, "join": "and", "type": "update",
                    "compensation_cost": 0.0}],
         "arcs": [{"src": "Check", "dst": "Reserve",
                   "condition": "WF.qty > 10"}],
         "rollback_points": [{"failed_step": "Ship", "origin": "Reserve"}],
         "compensation_sets": [["Reserve", "Pack"]],
         "abort_compensation": ["Reserve"],
         "outputs": {"tracking": "Ship.trk"}}

    Only ``name`` and ``steps`` are required.  Raises
    :class:`~repro.errors.SchemaError` on malformed documents (missing
    keys, unknown fields are ignored by design — forward compatibility).
    """
    if not isinstance(payload, dict):
        raise SchemaError("schema document must be a JSON object")
    try:
        name = payload["name"]
        steps = payload["steps"]
    except KeyError as exc:
        raise SchemaError(f"schema document missing required key {exc}") from None
    builder = SchemaBuilder(name, inputs=payload.get("inputs", ()))
    if not isinstance(steps, list) or not steps:
        raise SchemaError("schema document needs a non-empty 'steps' list")
    for step in steps:
        try:
            step_name = step["name"]
        except (KeyError, TypeError):
            raise SchemaError("every step needs a 'name'") from None
        extras = {}
        for json_key, kwarg in (
            ("join", "join"), ("type", "step_type"),
            ("compensation_cost", "compensation_cost"),
            ("compensation_program", "compensation_program"),
            ("compensable", "compensable"), ("resources", "resources"),
        ):
            if json_key in step:
                extras[kwarg] = step[json_key]
        builder.step(
            step_name,
            program=step.get("program", step_name),
            inputs=step.get("inputs", ()),
            outputs=step.get("outputs", ()),
            cost=step.get("cost", 1.0),
            **extras,
        )
    for arc in payload.get("arcs", ()):
        builder.arc(arc["src"], arc["dst"], arc.get("condition"))
    for point in payload.get("rollback_points", ()):
        builder.rollback_point(point["failed_step"], point["origin"])
    for members in payload.get("compensation_sets", ()):
        builder.compensation_set(*members)
    abort = payload.get("abort_compensation", ())
    if abort:
        builder.abort_compensation(*abort)
    for out_name, ref in payload.get("outputs", {}).items():
        builder.output(out_name, ref)
    return builder.build()


class WorkflowService:
    """One wall-clock control system behind a submission/query surface."""

    def __init__(
        self,
        architecture: str = "centralized",
        seed: int = 0,
        latency: float = 0.0,
        work_time_scale: float = 0.01,
        num_agents: int = 4,
        config: SystemConfig | None = None,
    ):
        try:
            system_cls = _ARCHITECTURES[architecture]
        except KeyError:
            raise WorkloadError(
                f"unknown architecture {architecture!r}; choose one of "
                f"{sorted(_ARCHITECTURES)}"
            ) from None
        self.architecture = architecture
        self.runtime = RealtimeRuntime(latency=FixedLatency(latency))
        if config is None:
            # Wall-clock timeouts: the simulated defaults (tens of time
            # units) would mean tens of real seconds of watchdog wait.
            config = SystemConfig(
                seed=seed,
                runtime="asyncio",
                latency=latency,
                work_time_scale=work_time_scale,
                step_status_timeout=2.0,
                step_status_poll_interval=1.0,
            )
        self.system = system_cls(config, num_agents=num_agents,
                                 runtime=self.runtime)
        self.system.trace.listener = self._on_trace
        self.started_at: float | None = None
        self._installed_documents: set[str] = set()
        self._known_instances: set[str] = set()
        self._submitted = 0
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._closed_streams: set[str] = set()
        self._watcher: asyncio.Task[None] | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Bind the runtime clock and start the outcome watcher."""
        self.runtime.start(loop)
        self.started_at = self.runtime.clock.now
        if self._watcher is None:
            owner = loop if loop is not None else asyncio.get_running_loop()
            self._watcher = owner.create_task(self._watch_outcomes())

    async def close(self) -> None:
        if self._watcher is not None:
            self._watcher.cancel()
            try:
                await self._watcher
            except asyncio.CancelledError:
                pass
            self._watcher = None

    # -- submission --------------------------------------------------------

    def submit(
        self,
        laws: str | None = None,
        schema: dict[str, Any] | None = None,
        workflow: str | None = None,
        inputs: dict[str, Any] | None = None,
        instances: int = 1,
    ) -> dict[str, Any]:
        """Install (once) and start ``instances`` runs of a workflow.

        Exactly one of ``laws`` (LAWS source text) or ``schema`` (a
        schema-JSON document) may be given; with neither, ``workflow``
        must name an already-installed class.  Returns a summary dict
        with the started instance ids.
        """
        if laws is not None and schema is not None:
            raise FrontEndError("submit either 'laws' or 'schema', not both")
        if instances < 1:
            raise FrontEndError("instances must be >= 1")
        default_name = None
        if laws is not None:
            default_name = self._install_laws(laws)
        elif schema is not None:
            default_name = self._install_schema(schema)
        schema_name = workflow or default_name
        if schema_name is None:
            raise FrontEndError(
                "no workflow named: submit 'laws' or 'schema', or name an "
                "installed class via 'workflow'"
            )
        if schema_name not in self.system.schemas:
            raise FrontEndError(
                f"workflow class {schema_name!r} is not installed "
                f"(installed: {sorted(self.system.schemas)})"
            )
        started = [
            self.system.start_workflow(schema_name, dict(inputs or {}))
            for __ in range(instances)
        ]
        self._known_instances.update(started)
        self._submitted += len(started)
        return {"workflow": schema_name, "instances": started}

    def _install_laws(self, text: str) -> str:
        """Install a LAWS document once; return its first schema name."""
        digest = "laws:" + hashlib.sha256(text.encode()).hexdigest()
        document = load_laws(text)
        if digest not in self._installed_documents:
            self._check_fresh(s.name for s in document.schemas)
            document.install(self.system)
            self._installed_documents.add(digest)
        return document.schemas[0].name

    def _install_schema(self, payload: dict[str, Any]) -> str:
        digest = "schema:" + hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        schema = schema_from_dict(payload)
        if digest not in self._installed_documents:
            self._check_fresh([schema.name])
            self.system.register_schema(schema)
            self._installed_documents.add(digest)
        return schema.name

    def _check_fresh(self, names) -> None:
        clashes = [n for n in names if n in self.system.schemas]
        if clashes:
            raise FrontEndError(
                f"workflow class(es) {clashes} already installed by a "
                f"different document; rename or reuse via 'workflow'"
            )

    # -- queries -----------------------------------------------------------

    def status(self) -> dict[str, Any]:
        clock = self.runtime.clock
        return {
            "ok": True,
            "architecture": self.architecture,
            "runtime": self.runtime.name,
            "uptime": (0.0 if self.started_at is None
                       else clock.now - self.started_at),
            "workflows": sorted(self.system.schemas),
            "instances_submitted": self._submitted,
            "instances_finished": len(self.system.outcomes),
            "events_processed": clock.events_processed,
            "messages_sent": self.system.metrics.total_messages(),
        }

    def instance(self, instance_id: str) -> dict[str, Any]:
        """Public status record for one instance (running or finished)."""
        outcome = self.system.outcomes.get(instance_id)
        if outcome is not None:
            return {
                "instance": instance_id,
                "workflow": outcome.schema_name,
                "status": outcome.status.value,
                "outputs": dict(outcome.outputs),
                "finished_at": outcome.finished_at,
            }
        if instance_id not in self._known_instances:
            raise FrontEndError(f"unknown instance {instance_id!r}")
        return {"instance": instance_id, "status": "running"}

    # -- event streaming ---------------------------------------------------

    def subscribe(self, instance_id: str) -> asyncio.Queue:
        """Queue of event dicts for one instance, ``None``-terminated.

        Subscribing to an already-finished instance yields a single
        final status event and then the terminator.
        """
        if (instance_id not in self._known_instances
                and instance_id not in self.system.outcomes):
            raise FrontEndError(f"unknown instance {instance_id!r}")
        queue: asyncio.Queue = asyncio.Queue()
        if instance_id in self.system.outcomes:
            queue.put_nowait(self._final_event(instance_id))
            queue.put_nowait(None)
            return queue
        self._subscribers.setdefault(instance_id, []).append(queue)
        return queue

    def _on_trace(self, rec) -> None:
        """Trace tap: fan each instance-tagged record out to subscribers."""
        instance_id = rec.detail.get("instance")
        if not instance_id:
            return
        queues = self._subscribers.get(instance_id)
        if not queues:
            return
        event = {"t": round(rec.time, 6), "node": rec.node, "kind": rec.kind}
        event.update(
            (k, v) for k, v in rec.detail.items() if _jsonable(v)
        )
        for queue in queues:
            queue.put_nowait(event)

    def _final_event(self, instance_id: str) -> dict[str, Any]:
        record = self.instance(instance_id)
        record["kind"] = "instance.finished"
        return record

    async def _watch_outcomes(self) -> None:
        """Close subscriber streams once their instance has an outcome."""
        while True:
            await asyncio.sleep(_WATCH_INTERVAL)
            finished = [
                iid for iid in self._subscribers
                if iid in self.system.outcomes
            ]
            for iid in finished:
                for queue in self._subscribers.pop(iid, ()):
                    queue.put_nowait(self._final_event(iid))
                    queue.put_nowait(None)


def _jsonable(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool, type(None)))
