"""Engine-facing core of the ``repro serve`` daemon.

:class:`WorkflowService` owns one control system (any of the paper's
three architectures) mounted on the wall-clock asyncio runtime
(:class:`~repro.runtime.realtime.RealtimeRuntime`), and exposes the
operations the HTTP front door needs: submit a workflow (LAWS text or a
schema-JSON document), query an instance's status, and subscribe to its
live event stream (tapped off the engine trace via
:attr:`repro.runtime.trace.Trace.listener`).

Submissions are idempotent at the document level: the same LAWS text (or
the same schema JSON) installs its workflow classes once and then only
starts new instances.  Event subscribers get per-instance
:class:`asyncio.Queue` feeds terminated by ``None`` once the instance
reaches an outcome; a background watcher closes streams for instances
that finish without a final trace record mentioning them.

The service is also the daemon's *observability plane*: it owns the
engine's :class:`~repro.obs.registry.MetricsRegistry` (extended with
service-level commit/abort latency histograms and runtime queue-depth /
retry instruments), an always-on :class:`~repro.obs.profile.Profiler`
over the realtime clock and transport, and a structured NDJSON logger
(:mod:`repro.obs.logging`) correlating every operational event with the
``instance``/``node``/``lamport`` keys of the causal trace.  The HTTP
front door renders these through :meth:`metrics_text` (Prometheus
exposition), :meth:`trace_jsonl` (a ``repro analyze``-compatible
snapshot) and :meth:`profile_collapsed` (flamegraph stacks).  With
``observability=False`` all three raise — the front door turns that
into an explicit 503 rather than an empty scrape.

Resilience plane (PR 9): with ``state_dir`` set the service journals
installed documents, acknowledged submissions, outcomes and engine-store
fragments to a crash-durable :class:`~repro.service.durability.
ServiceLog` (group-flushed before each submission is acknowledged), and
:meth:`start` replays it — re-installing workflows, restoring finished
outcomes, and re-driving in-flight instances under fresh ids recorded as
``redrive`` aliases.  Submissions pass an :class:`~repro.service.
admission.AdmissionController` (drain shedding, bounded in-flight queue,
token-bucket rate limit) and may carry a ``deadline_s``; instances still
running past their deadline are aborted and reported with a 504-style
``deadline-exceeded`` status.  Chaos plans reach the live runtime via
:meth:`install_faults` (guarded by ``enable_fault_endpoint``).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from typing import Any

from repro.engines import (
    CentralizedControlSystem,
    DistributedControlSystem,
    ParallelControlSystem,
    SystemConfig,
)
from repro.errors import (
    AdmissionError,
    FrontEndError,
    SchemaError,
    StorageError,
    WorkloadError,
)
from repro.laws import load_laws
from repro.model import SchemaBuilder
from repro.obs.export import prometheus_text, trace_to_jsonl
from repro.obs.logging import StructuredLogger
from repro.obs.profile import Profiler
from repro.runtime.faults import FaultPlan
from repro.runtime.latency import FixedLatency
from repro.runtime.realtime import RealtimeRuntime
from repro.runtime.rng import SimRandom
from repro.service.admission import AdmissionController
from repro.service.durability import ServiceLog, ServiceState

__all__ = ["WorkflowService", "schema_from_dict"]

#: Wall-clock seconds buckets for the end-to-end instance latency
#: histograms (submission to commit/abort on the realtime runtime).
INSTANCE_LATENCY_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_ARCHITECTURES = {
    "centralized": CentralizedControlSystem,
    "parallel": ParallelControlSystem,
    "distributed": DistributedControlSystem,
}

#: How often the background watcher sweeps for finished instances (s).
_WATCH_INTERVAL = 0.05


def schema_from_dict(payload: dict[str, Any]):
    """Build a :class:`~repro.model.schema.WorkflowSchema` from JSON.

    The document mirrors the :class:`~repro.model.SchemaBuilder` surface::

        {"name": "Orders", "inputs": ["part", "qty"],
         "steps": [{"name": "Check", "program": "ord.check",
                    "inputs": ["WF.part"], "outputs": ["ok"],
                    "cost": 1.0, "join": "and", "type": "update",
                    "compensation_cost": 0.0}],
         "arcs": [{"src": "Check", "dst": "Reserve",
                   "condition": "WF.qty > 10"}],
         "rollback_points": [{"failed_step": "Ship", "origin": "Reserve"}],
         "compensation_sets": [["Reserve", "Pack"]],
         "abort_compensation": ["Reserve"],
         "outputs": {"tracking": "Ship.trk"}}

    Only ``name`` and ``steps`` are required.  Raises
    :class:`~repro.errors.SchemaError` on malformed documents (missing
    keys, unknown fields are ignored by design — forward compatibility).
    """
    if not isinstance(payload, dict):
        raise SchemaError("schema document must be a JSON object")
    try:
        name = payload["name"]
        steps = payload["steps"]
    except KeyError as exc:
        raise SchemaError(f"schema document missing required key {exc}") from None
    builder = SchemaBuilder(name, inputs=payload.get("inputs", ()))
    if not isinstance(steps, list) or not steps:
        raise SchemaError("schema document needs a non-empty 'steps' list")
    for step in steps:
        try:
            step_name = step["name"]
        except (KeyError, TypeError):
            raise SchemaError("every step needs a 'name'") from None
        extras = {}
        for json_key, kwarg in (
            ("join", "join"), ("type", "step_type"),
            ("compensation_cost", "compensation_cost"),
            ("compensation_program", "compensation_program"),
            ("compensable", "compensable"), ("resources", "resources"),
        ):
            if json_key in step:
                extras[kwarg] = step[json_key]
        builder.step(
            step_name,
            program=step.get("program", step_name),
            inputs=step.get("inputs", ()),
            outputs=step.get("outputs", ()),
            cost=step.get("cost", 1.0),
            **extras,
        )
    for arc in payload.get("arcs", ()):
        builder.arc(arc["src"], arc["dst"], arc.get("condition"))
    for point in payload.get("rollback_points", ()):
        builder.rollback_point(point["failed_step"], point["origin"])
    for members in payload.get("compensation_sets", ()):
        builder.compensation_set(*members)
    abort = payload.get("abort_compensation", ())
    if abort:
        builder.abort_compensation(*abort)
    for out_name, ref in payload.get("outputs", {}).items():
        builder.output(out_name, ref)
    return builder.build()


class WorkflowService:
    """One wall-clock control system behind a submission/query surface."""

    def __init__(
        self,
        architecture: str = "centralized",
        seed: int = 0,
        latency: float = 0.0,
        work_time_scale: float = 0.01,
        num_agents: int = 4,
        config: SystemConfig | None = None,
        observability: bool = True,
        trace_capacity: int | None = 200_000,
        logger: StructuredLogger | None = None,
        state_dir: str | None = None,
        max_inflight: int | None = None,
        rate_limit: float | None = None,
        rate_burst: int | None = None,
        enable_fault_endpoint: bool = False,
    ):
        try:
            system_cls = _ARCHITECTURES[architecture]
        except KeyError:
            raise WorkloadError(
                f"unknown architecture {architecture!r}; choose one of "
                f"{sorted(_ARCHITECTURES)}"
            ) from None
        self.architecture = architecture
        # Seed the runtime's jitter streams from the service seed so a
        # chaos replay of the wall-clock path draws the same retry-backoff
        # and fault-decision sequences (satellite of the sim determinism).
        effective_seed = seed if config is None else config.seed
        self.runtime = RealtimeRuntime(
            latency=FixedLatency(latency),
            rng=SimRandom(effective_seed).spawn("runtime"),
        )
        if config is None:
            # Wall-clock timeouts: the simulated defaults (tens of time
            # units) would mean tens of real seconds of watchdog wait.
            # The trace runs in ring mode — a long-lived daemon wants the
            # most recent window, not the boot minutes (drops are counted
            # and reported at shutdown either way).
            config = SystemConfig(
                seed=seed,
                runtime="asyncio",
                latency=latency,
                work_time_scale=work_time_scale,
                step_status_timeout=2.0,
                step_status_poll_interval=1.0,
                trace=observability,
                trace_capacity=trace_capacity,
                trace_ring=True,
            )
        #: Whether the metrics/trace/profile surfaces are live.  A config
        #: passed explicitly decides via its own ``trace`` switch.
        self.observability = config.trace
        self.system = system_cls(config, num_agents=num_agents,
                                 runtime=self.runtime)
        self.system.trace.listener = self._on_trace
        self.logger = (logger if logger is not None
                       else StructuredLogger(stream=None))
        self.logger = self.logger.bind(architecture=architecture)
        self.profiler: Profiler | None = None
        if self.observability:
            # Always-on subsystem profiler: the wall-clock hot path is
            # orders of magnitude cooler than the simulated kernel's, so
            # the frame brackets are cheap next to real network latency.
            self.profiler = Profiler(sample_interval=64).install(self.system)
        executor = self.runtime.executor
        executor.on_retry = self._on_executor_retry
        executor.on_give_up = self._on_executor_give_up
        self.started_at: float | None = None
        self._installed_documents: set[str] = set()
        #: instance id -> wall-clock submit time (insertion ordered; the
        #: key set doubles as "known instances").
        self._submit_times: dict[str, float] = {}
        #: Instances whose end-to-end latency has not been recorded yet.
        self._latency_pending: set[str] = set()
        self._submitted = 0
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        #: Firehose subscribers: queues receiving every instance-tagged
        #: event (the ``GET /events`` stream and ``repro top``).
        self._event_taps: list[asyncio.Queue] = []
        self._closed_streams: set[str] = set()
        self._watcher: asyncio.Task[None] | None = None
        self._ready = False
        self._draining = False
        #: Admission gate for every submission (always present: even with
        #: no knobs set it sheds load during drain).
        self.admission = AdmissionController(
            max_inflight=max_inflight, rate=rate_limit, burst=rate_burst,
        )
        self.enable_fault_endpoint = enable_fault_endpoint
        #: instance id -> absolute wall-clock deadline (submissions that
        #: carried ``deadline_s``).
        self._deadlines: dict[str, float] = {}
        #: Instances whose deadline expired before an engine outcome;
        #: value is the expiry time.  Reported as ``deadline-exceeded``.
        self._expired: dict[str, float] = {}
        #: Durable log (``--state-dir``); ``None`` = memory-only service.
        self._log: ServiceLog | None = None
        #: Outcomes restored from a previous incarnation's log, keyed by
        #: the *original* instance id (the engine never saw these ids).
        self._durable_outcomes: dict[str, dict[str, Any]] = {}
        #: Redrive aliases: original id -> replacement id (and the chain's
        #: reverse, replacement -> original, for log/trace correlation).
        self._aliases: dict[str, str] = {}
        self._origins: dict[str, str] = {}
        self._recovered_state: ServiceState | None = None
        self._replaying = False
        if state_dir is not None:
            self._log = ServiceLog(state_dir)
            self._recovered_state = ServiceState.from_records(
                self._log.records()
            )
            if self._log.torn_tail:
                self.logger.warning("durability.torn_tail",
                                    path=str(self._log.path))

    # -- lifecycle ---------------------------------------------------------

    def start(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Bind the runtime clock, replay durable state, start the watcher."""
        self.runtime.start(loop)
        self.started_at = self.runtime.clock.now
        if self._recovered_state is not None:
            # Recovery needs the bound clock (re-driving schedules frontend
            # work), so it runs here rather than in __init__.
            state, self._recovered_state = self._recovered_state, None
            self._recover(state)
        if self._watcher is None:
            owner = loop if loop is not None else asyncio.get_running_loop()
            self._watcher = owner.create_task(self._watch_outcomes())
        self._ready = True
        self.logger.info(
            "service.ready", runtime=self.runtime.name,
            observability=self.observability,
            durable=self._log is not None,
        )

    def _recover(self, state: ServiceState) -> None:
        """Recovery boot: replay the durable log into a fresh system.

        Order matters: documents first (workflow classes must exist),
        then the instance-id reservation (fresh ids must never collide
        with acknowledged pre-crash ids), then outcome restoration, then
        the re-drive of in-flight instances — each one a *new* engine
        instance whose lineage is recorded as a ``redrive`` record, so a
        second crash resolves the full chain.
        """
        self._replaying = True
        try:
            for document in state.documents:
                if "laws" in document:
                    self._install_laws(document["laws"])
                elif "schema" in document:
                    self._install_schema(document["schema"])
                else:  # pragma: no cover - defensive
                    raise StorageError(
                        f"document record with neither laws nor schema: "
                        f"{sorted(document)}"
                    )
        finally:
            self._replaying = False
        self.system.reserve_instance_ids(state.max_instance_index())
        self._aliases.update(state.redrives)
        for original, replacement in state.redrives.items():
            self._origins[replacement] = original
        for iid, outcome in state.outcomes.items():
            self._durable_outcomes[iid] = dict(outcome)
        redriven = 0
        now = self.runtime.clock.now
        for payload in state.inflight():
            original = payload["instance"]
            workflow = payload["workflow"]
            inputs = dict(payload.get("inputs", {}))
            replacement = self.system.start_workflow(workflow, inputs)
            self._aliases[original] = replacement
            self._origins[replacement] = original
            self._submit_times[replacement] = now
            self._latency_pending.add(replacement)
            self._submitted += 1
            deadline = payload.get("deadline")
            if deadline is not None:
                # Absolute deadlines from the previous incarnation are in
                # its clock domain; grant the re-driven instance its full
                # original budget instead of an already-burned window.
                self._deadlines[replacement] = now + float(deadline)
            self._log.append("submit", {
                "instance": replacement, "workflow": workflow,
                "inputs": inputs, "deadline": deadline,
            })
            self._log.append("redrive", {
                "original": original, "replacement": replacement,
            })
            self.logger.info("instance.redriven", instance=replacement,
                             original=original, workflow=workflow)
            redriven += 1
        self._log.flush()
        self.logger.info(
            "service.recovered", documents=len(state.documents),
            finished=len(state.outcomes), redriven=redriven,
            log_records=len(self._log), torn_tail=self._log.torn_tail,
        )

    def readiness(self) -> tuple[bool, str]:
        """Readiness (distinct from liveness): ``(ready, reason)``.

        Not ready until :meth:`start` has bound the runtime and launched
        the queue watcher, and never ready again once a graceful drain
        has begun — load balancers should stop routing new submissions
        while in-flight instances finish.
        """
        if self._draining:
            return False, "draining"
        if not self._ready or self._watcher is None:
            return False, "starting"
        return True, "ok"

    def begin_drain(self) -> None:
        """Flip readiness off ahead of shutdown (idempotent).

        New submissions are shed immediately (503 ``draining``); the
        firehose event streams are flushed and closed with their ``None``
        terminator (there will be no new instances to report), while
        per-instance streams stay open until their instance finishes —
        in-flight work runs to its outcome.
        """
        if not self._draining:
            self._draining = True
            self.logger.info("service.draining",
                             running=self.running_count())
            taps, self._event_taps = self._event_taps, []
            for queue in taps:
                queue.put_nowait(None)

    async def close(self) -> None:
        self.begin_drain()
        if self._watcher is not None:
            self._watcher.cancel()
            try:
                await self._watcher
            except asyncio.CancelledError:
                pass
            self._watcher = None
        for queue in self._event_taps:
            queue.put_nowait(None)
        self._event_taps.clear()
        trace = self.system.trace
        if trace.dropped:
            # PR 6 taught `repro trace` to warn about ring-buffer losses;
            # the daemon owes its operator the same honesty at shutdown.
            self.logger.warning(
                "trace.dropped", dropped=trace.dropped,
                capacity=trace.capacity, policy=trace.drop_policy,
            )
        if self._log is not None:
            self._log.close()
        self.logger.info(
            "service.closed", instances_submitted=self._submitted,
            instances_finished=len(self.system.outcomes),
        )

    # -- submission --------------------------------------------------------

    def running_count(self) -> int:
        """Acknowledged instances that have not reached an outcome yet."""
        outcomes = self.system.outcomes
        return sum(1 for i in self._submit_times if i not in outcomes)

    def submit(
        self,
        laws: str | None = None,
        schema: dict[str, Any] | None = None,
        workflow: str | None = None,
        inputs: dict[str, Any] | None = None,
        instances: int = 1,
        deadline_s: float | None = None,
    ) -> dict[str, Any]:
        """Install (once) and start ``instances`` runs of a workflow.

        Exactly one of ``laws`` (LAWS source text) or ``schema`` (a
        schema-JSON document) may be given; with neither, ``workflow``
        must name an already-installed class.  Submissions pass the
        admission controller first (drain shedding, in-flight bound,
        rate limit) and optionally carry a per-instance ``deadline_s``:
        instances still running that many wall-clock seconds later are
        aborted and reported as ``deadline-exceeded``.  With a durable
        log, the submission is group-flushed to disk *before* it is
        acknowledged.  Returns a summary dict with the started ids.
        """
        if laws is not None and schema is not None:
            raise FrontEndError("submit either 'laws' or 'schema', not both")
        if instances < 1:
            raise FrontEndError("instances must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise FrontEndError("deadline_s must be > 0 seconds")
        now = self.runtime.clock.now
        try:
            self.admission.admit(now, running=self.running_count(),
                                 count=instances, draining=self._draining)
        except AdmissionError as exc:
            self.logger.warning(
                "admission.rejected", code=exc.code, status=exc.status,
                instances=instances, retry_after=exc.retry_after,
            )
            raise
        default_name = None
        if laws is not None:
            default_name = self._install_laws(laws)
        elif schema is not None:
            default_name = self._install_schema(schema)
        schema_name = workflow or default_name
        if schema_name is None:
            raise FrontEndError(
                "no workflow named: submit 'laws' or 'schema', or name an "
                "installed class via 'workflow'"
            )
        if schema_name not in self.system.schemas:
            raise FrontEndError(
                f"workflow class {schema_name!r} is not installed "
                f"(installed: {sorted(self.system.schemas)})"
            )
        started = [
            self.system.start_workflow(schema_name, dict(inputs or {}))
            for __ in range(instances)
        ]
        for iid in started:
            self._submit_times[iid] = now
            self._latency_pending.add(iid)
            if deadline_s is not None:
                self._deadlines[iid] = now + deadline_s
            if self._log is not None:
                self._log.append("submit", {
                    "instance": iid, "workflow": schema_name,
                    "inputs": dict(inputs or {}), "deadline": deadline_s,
                })
            self.logger.info("instance.submitted", instance=iid,
                             workflow=schema_name, deadline_s=deadline_s)
        if self._log is not None:
            # Group commit: one fsync makes the whole batch durable before
            # the caller sees an acknowledgement.
            self._log.flush()
        self._submitted += len(started)
        return {"workflow": schema_name, "instances": started}

    def _install_laws(self, text: str) -> str:
        """Install a LAWS document once; return its first schema name."""
        digest = "laws:" + hashlib.sha256(text.encode()).hexdigest()
        document = load_laws(text)
        if digest not in self._installed_documents:
            self._check_fresh(s.name for s in document.schemas)
            document.install(self.system)
            self._installed_documents.add(digest)
            if self._log is not None and not self._replaying:
                self._log.append("document", {"laws": text})
        return document.schemas[0].name

    def _install_schema(self, payload: dict[str, Any]) -> str:
        digest = "schema:" + hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        schema = schema_from_dict(payload)
        if digest not in self._installed_documents:
            self._check_fresh([schema.name])
            self.system.register_schema(schema)
            self._installed_documents.add(digest)
            if self._log is not None and not self._replaying:
                self._log.append("document", {"schema": payload})
        return schema.name

    def _check_fresh(self, names) -> None:
        clashes = [n for n in names if n in self.system.schemas]
        if clashes:
            raise FrontEndError(
                f"workflow class(es) {clashes} already installed by a "
                f"different document; rename or reuse via 'workflow'"
            )

    # -- fault injection ---------------------------------------------------

    def install_faults(self, spec: str) -> dict[str, Any]:
        """Install a chaos plan on the live runtime (``POST /debug/faults``).

        Off by default: the endpoint can crash nodes and lose messages,
        so it only works when the daemon was started with
        ``--enable-fault-endpoint`` (never expose that flag beyond a
        chaos rig).  One plan per process — a second install is refused
        (409-shaped) rather than silently stacking fault pipelines.
        """
        if not self.enable_fault_endpoint:
            raise FrontEndError(
                "fault injection endpoint is disabled; restart `repro "
                "serve` with --enable-fault-endpoint (chaos rigs only)"
            )
        plan = FaultPlan.parse(spec)
        if self.system.faults is not None:
            raise WorkloadError("fault injector already installed")
        injector = self.system.inject_faults(plan)
        self.logger.warning("faults.installed", plan=plan.to_spec())
        return {"installed": injector.plan.to_spec()}

    def fault_stats(self) -> dict[str, Any]:
        """Plan + decision counters of the installed injector (GET side)."""
        if not self.enable_fault_endpoint:
            raise FrontEndError(
                "fault injection endpoint is disabled; restart `repro "
                "serve` with --enable-fault-endpoint (chaos rigs only)"
            )
        injector = self.system.faults
        if injector is None:
            return {"installed": None}
        return {"installed": injector.plan.to_spec(),
                "stats": injector.stats.as_dict(),
                "lost_messages": len(injector.lost)}

    # -- queries -----------------------------------------------------------

    def status(self) -> dict[str, Any]:
        clock = self.runtime.clock
        return {
            "ok": True,
            "architecture": self.architecture,
            "runtime": self.runtime.name,
            "uptime": (0.0 if self.started_at is None
                       else clock.now - self.started_at),
            "workflows": sorted(self.system.schemas),
            "instances_submitted": self._submitted,
            "instances_finished": len(self.system.outcomes),
            "events_processed": clock.events_processed,
            "messages_sent": self.system.metrics.total_messages(),
            "ready": self.readiness()[0],
            "draining": self._draining,
            "observability": self.observability,
            "trace_dropped": self.system.trace.dropped,
            "executor_retries": self.runtime.executor.retries,
            "executor_failures": len(self.runtime.executor.failures),
            "durable": self._log is not None,
            "instances_recovered": len(self._durable_outcomes),
            "instances_redriven": len(self._origins),
            "admission": self.admission.stats.as_dict(),
            "faults_installed": (None if self.system.faults is None
                                 else self.system.faults.plan.to_spec()),
        }

    def resolve_instance(self, instance_id: str) -> str:
        """Follow redrive aliases to the id currently carrying the work."""
        seen = set()
        while instance_id in self._aliases:
            if instance_id in seen:  # pragma: no cover - defensive
                break
            seen.add(instance_id)
            instance_id = self._aliases[instance_id]
        return instance_id

    def instance(self, instance_id: str) -> dict[str, Any]:
        """Public status record for one instance (running or finished).

        Ids acknowledged by a pre-crash incarnation resolve through the
        redrive chain: the record reports the requested id with the
        resolved id's state (plus the ``resolved`` field when they
        differ).  Instances past their submission deadline report
        ``deadline-exceeded`` until the engine abort lands, after which
        the engine outcome wins (flagged ``deadline_exceeded``).
        """
        resolved = self.resolve_instance(instance_id)
        record = self._instance_record(resolved)
        if record is None:
            raise FrontEndError(f"unknown instance {instance_id!r}")
        if resolved != instance_id:
            record["instance"] = instance_id
            record["resolved"] = resolved
        return record

    def _instance_record(self, iid: str) -> dict[str, Any] | None:
        expired = iid in self._expired
        outcome = self.system.outcomes.get(iid)
        if outcome is not None:
            record = {
                "instance": iid,
                "workflow": outcome.schema_name,
                "status": outcome.status.value,
                "outputs": dict(outcome.outputs),
                "finished_at": outcome.finished_at,
            }
            if expired:
                record["deadline_exceeded"] = True
            return record
        durable = self._durable_outcomes.get(iid)
        if durable is not None:
            return {
                "instance": iid,
                "workflow": durable.get("workflow"),
                "status": durable.get("status"),
                "outputs": dict(durable.get("outputs") or {}),
                "finished_at": durable.get("finished_at"),
                "recovered": True,
            }
        if iid not in self._submit_times:
            return None
        if expired:
            return {"instance": iid, "status": "deadline-exceeded",
                    "deadline_exceeded": True}
        return {"instance": iid, "status": "running"}

    def instances(self) -> list[dict[str, Any]]:
        """Per-instance status rows, submission order (``repro top`` feed)."""
        now = self.runtime.clock.now
        rows = []
        for iid, submitted in self._submit_times.items():
            outcome = self.system.outcomes.get(iid)
            if outcome is not None:
                rows.append({
                    "instance": iid,
                    "workflow": outcome.schema_name,
                    "status": outcome.status.value,
                    "age": round(now - submitted, 6),
                })
            else:
                status = ("deadline-exceeded" if iid in self._expired
                          else "running")
                rows.append({"instance": iid, "status": status,
                             "age": round(now - submitted, 6)})
        return rows

    # -- event streaming ---------------------------------------------------

    def subscribe(self, instance_id: str) -> asyncio.Queue:
        """Queue of event dicts for one instance, ``None``-terminated.

        Subscribing to an already-finished instance yields a single
        final status event and then the terminator.
        """
        instance_id = self.resolve_instance(instance_id)
        if (instance_id not in self._submit_times
                and instance_id not in self.system.outcomes
                and instance_id not in self._durable_outcomes):
            raise FrontEndError(f"unknown instance {instance_id!r}")
        queue: asyncio.Queue = asyncio.Queue()
        if (instance_id in self.system.outcomes
                or instance_id in self._durable_outcomes):
            queue.put_nowait(self._final_event(instance_id))
            queue.put_nowait(None)
            return queue
        self._subscribers.setdefault(instance_id, []).append(queue)
        return queue

    def unsubscribe(self, instance_id: str, queue: asyncio.Queue) -> None:
        """Detach a subscriber queue (client went away mid-stream).

        Without this, a disconnecting NDJSON client would leave its
        queue accumulating events until the instance finishes.  Unknown
        queues (already closed by the watcher) are ignored.
        """
        instance_id = self.resolve_instance(instance_id)
        queues = self._subscribers.get(instance_id)
        if not queues:
            return
        try:
            queues.remove(queue)
        except ValueError:
            return
        if not queues:
            del self._subscribers[instance_id]

    def subscribe_events(self) -> asyncio.Queue:
        """Firehose queue of every instance-tagged event (all instances).

        Terminated with ``None`` at service close; callers detach early
        via :meth:`unsubscribe_events`.
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._event_taps.append(queue)
        return queue

    def unsubscribe_events(self, queue: asyncio.Queue) -> None:
        try:
            self._event_taps.remove(queue)
        except ValueError:
            pass

    def _on_trace(self, rec) -> None:
        """Trace tap: fan each instance-tagged record out to subscribers."""
        instance_id = rec.detail.get("instance")
        if not instance_id:
            return
        queues = self._subscribers.get(instance_id)
        if not queues and not self._event_taps:
            return
        event = {"t": round(rec.time, 6), "node": rec.node, "kind": rec.kind}
        event.update(
            (k, v) for k, v in rec.detail.items() if _jsonable(v)
        )
        for queue in queues or ():
            queue.put_nowait(event)
        for queue in self._event_taps:
            queue.put_nowait(event)

    def _final_event(self, instance_id: str) -> dict[str, Any]:
        record = self.instance(instance_id)
        record["kind"] = "instance.finished"
        return record

    async def _watch_outcomes(self) -> None:
        """Sweep for finished instances: record end-to-end latency into
        the commit/abort histograms, log and journal the outcome (plus
        engine-store fragments), enforce submission deadlines, and close
        subscriber streams with a final event + ``None`` terminator."""
        while True:
            await asyncio.sleep(_WATCH_INTERVAL)
            outcomes = self.system.outcomes
            finished = [i for i in self._latency_pending if i in outcomes]
            for iid in finished:
                self._latency_pending.discard(iid)
                self._record_latency(iid, outcomes[iid])
                if self._log is not None:
                    self._journal_outcome(iid, outcomes[iid])
            if self._log is not None and finished:
                # Group commit: one fsync covers every outcome (and its
                # fragments) that landed in this sweep.
                self._log.flush()
            self._sweep_deadlines()
            for iid in [i for i in self._subscribers if i in outcomes]:
                for queue in self._subscribers.pop(iid, ()):
                    queue.put_nowait(self._final_event(iid))
                    queue.put_nowait(None)

    def _sweep_deadlines(self) -> None:
        """Abort instances that outlived their submission deadline."""
        if not self._deadlines:
            return
        now = self.runtime.clock.now
        outcomes = self.system.outcomes
        for iid, deadline in list(self._deadlines.items()):
            if iid in outcomes:
                del self._deadlines[iid]
                continue
            if now < deadline:
                continue
            del self._deadlines[iid]
            self._expired[iid] = now
            self.admission.stats.deadline_exceeded += 1
            self.logger.warning("instance.deadline_exceeded", instance=iid,
                                overrun=round(now - deadline, 6))
            event = {"t": round(now, 6), "kind": "instance.deadline_exceeded",
                     "instance": iid}
            for queue in self._subscribers.get(iid, ()):
                queue.put_nowait(event)
            for queue in self._event_taps:
                queue.put_nowait(event)
            # The 504-style outcome: the service aborts the instance; the
            # engine's abort/compensation path drives it to a terminal
            # outcome, which keeps the at-most-once commit story intact.
            self.system.abort_workflow(iid)

    def _journal_outcome(self, instance_id: str, outcome) -> None:
        """Buffer one outcome (+ engine-store fragments) into the log."""
        self._log.append("outcome", {
            "instance": instance_id,
            "workflow": outcome.schema_name,
            "status": outcome.status.value,
            "outputs": dict(outcome.outputs),
            "finished_at": outcome.finished_at,
            "original": self._origins.get(instance_id),
        })
        for node_name, snapshot in self._instance_fragments(instance_id):
            self._log.append("fragment", {
                "instance": instance_id, "node": node_name,
                "state": snapshot,
            })

    def _instance_fragments(self, instance_id: str):
        """Engine-store snapshots for one instance, across architectures.

        Duck-typed over the transport's nodes: centralized/parallel
        engines expose a ``wfdb`` (workflow database), distributed agents
        an ``agdb`` (agent database with per-instance fragments).  Yields
        ``(node_name, snapshot_dict)`` pairs.
        """
        for name in self.runtime.transport.node_names():
            node = self.runtime.transport.node(name)
            wfdb = getattr(node, "wfdb", None)
            if wfdb is not None:
                if wfdb.has_instance(instance_id):
                    yield name, wfdb.instance(instance_id).snapshot()
                else:
                    # Finished instances are archived down to the paper's
                    # summary row; that row *is* the durable post-commit
                    # engine state.
                    try:
                        status = wfdb.status(instance_id)
                    except StorageError:
                        pass
                    else:
                        yield name, {"instance_id": instance_id,
                                     "summary": status.value}
            agdb = getattr(node, "agdb", None)
            if agdb is not None:
                if agdb.has_fragment(instance_id):
                    yield name, agdb.fragment(instance_id).snapshot()
                elif agdb.has_summary(instance_id):
                    yield name, {"instance_id": instance_id,
                                 "summary": agdb.summary(instance_id).value}

    def _record_latency(self, instance_id: str, outcome) -> None:
        submitted = self._submit_times.get(instance_id)
        latency = (None if submitted is None
                   else self.runtime.clock.now - submitted)
        status = outcome.status.value
        if latency is not None:
            self.admission.note_latency(latency)
        if latency is not None and self.observability:
            self.system.registry.histogram(
                "crew_service_instance_latency_seconds",
                "Wall-clock submission-to-outcome latency per instance.",
                buckets=INSTANCE_LATENCY_BUCKETS,
                architecture=self.architecture, status=status,
            ).observe(latency)
        self.logger.info(
            "instance.finished", instance=instance_id,
            workflow=outcome.schema_name, status=status,
            latency=None if latency is None else round(latency, 6),
        )

    # -- observability plane -----------------------------------------------

    def _on_executor_retry(self, fn, name, exc, attempt, backoff) -> None:
        """Executor hook: a transient step failure about to be retried."""
        self.logger.warning(
            "executor.retry", task=name, error=repr(exc),
            attempt=attempt, backoff=round(backoff, 6),
            **_node_fields(fn),
        )

    def _on_executor_give_up(self, fn, name, exc, attempts) -> None:
        """Executor hook: retry budget exhausted — the step is lost.

        Alongside the error log, snapshot the owning node's flight
        recorder into the trace (when ``fn`` is a node-bound method):
        the post-mortem sees the node's last transport events next to
        the failure instead of just a one-line repr.
        """
        fields = _node_fields(fn)
        self.logger.error(
            "executor.give_up", task=name, error=repr(exc),
            attempts=attempts, **fields,
        )
        owner = getattr(fn, "__self__", None)
        dump = getattr(owner, "dump_flight", None)
        if dump is not None:
            dump("task.failure", task=name, error=repr(exc),
                 attempts=attempts)

    def _refresh_runtime_metrics(self) -> None:
        """Sync scrape-time instruments from runtime/service state.

        Gauges are set; lifetime-monotone totals (executor counters,
        profiler frame aggregates) are *assigned* rather than
        ``inc()``-ed so repeated scrapes stay idempotent.
        """
        registry = self.system.registry
        clock = self.runtime.clock
        executor = self.runtime.executor
        registry.gauge(
            "crew_realtime_pending_timers",
            "Scheduled-but-unfired wall-clock callbacks.",
        ).set(clock.pending)
        registry.gauge(
            "crew_executor_inflight_tasks",
            "Executor tasks submitted but not yet finished.",
        ).set(executor.inflight)
        registry.gauge(
            "crew_service_event_subscribers",
            "Open NDJSON event-stream subscriptions (incl. firehose).",
        ).set(sum(len(q) for q in self._subscribers.values())
              + len(self._event_taps))
        registry.gauge(
            "crew_service_instances_running",
            "Submitted instances that have not reached an outcome.",
        ).set(len(self._submit_times) - sum(
            1 for i in self._submit_times if i in self.system.outcomes))
        registry.gauge(
            "crew_service_uptime_seconds",
            "Wall-clock seconds since the service runtime started.",
        ).set(0.0 if self.started_at is None
              else clock.now - self.started_at)
        _set_counter(registry.counter(
            "crew_executor_submitted_total",
            "Tasks handed to the realtime executor.",
        ), executor.submitted)
        _set_counter(registry.counter(
            "crew_executor_retries_total",
            "Transient task failures retried on the backoff policy.",
        ), executor.retries)
        _set_counter(registry.counter(
            "crew_executor_failures_total",
            "Tasks abandoned after exhausting the retry budget.",
        ), len(executor.failures))
        _set_counter(registry.counter(
            "crew_trace_dropped_records_total",
            "Trace records evicted from the ring buffer.",
        ), self.system.trace.dropped)
        admission = self.admission.stats
        _set_counter(registry.counter(
            "crew_admission_accepted_total",
            "Instances admitted by the submission gate.",
        ), admission.accepted)
        for reason, value in (
            ("draining", admission.rejected_draining),
            ("queue-full", admission.rejected_queue_full),
            ("rate-limited", admission.rejected_rate_limited),
        ):
            _set_counter(registry.counter(
                "crew_admission_rejected_total",
                "Instances refused by the submission gate.", reason=reason,
            ), value)
        _set_counter(registry.counter(
            "crew_service_deadline_exceeded_total",
            "Instances aborted for outliving their submission deadline.",
        ), admission.deadline_exceeded)
        if self.admission.bucket is not None:
            registry.gauge(
                "crew_admission_rate_tokens",
                "Token-bucket tokens currently available to submissions.",
            ).set(self.admission.bucket.tokens)
        if self._log is not None:
            _set_counter(registry.counter(
                "crew_service_wal_records_total",
                "Records appended to the durable service log.",
            ), self._log.appends)
            _set_counter(registry.counter(
                "crew_service_wal_flushes_total",
                "Group-commit fsync batches on the durable service log.",
            ), self._log.flushes)
        if self.profiler is not None:
            for stat in self.profiler.top_frames():
                _set_counter(registry.counter(
                    "crew_profile_calls_total",
                    "Profiler frame entries.", frame=stat.name), stat.calls)
                _set_counter(registry.counter(
                    "crew_profile_self_seconds_total",
                    "Wall-clock self time attributed to a profiler frame.",
                    frame=stat.name), stat.self_ns / 1e9)

    def _require_observability(self) -> None:
        if not self.observability:
            raise WorkloadError(
                "observability is disabled on this service; restart "
                "`repro serve` without --no-observability to enable "
                "/metrics, /debug/trace and /debug/profile"
            )

    def metrics_text(self) -> str:
        """Prometheus exposition of the full registry (scrape surface)."""
        self._require_observability()
        self._refresh_runtime_metrics()
        return prometheus_text(self.system.registry)

    def trace_jsonl(self) -> str:
        """`repro analyze`-compatible JSONL snapshot of the live trace."""
        self._require_observability()
        return trace_to_jsonl(self.system.trace, tracer=self.system.tracer)

    def profile_collapsed(self) -> str:
        """Collapsed flamegraph stacks from the subsystem profiler."""
        self._require_observability()
        assert self.profiler is not None
        return self.profiler.collapsed() + "\n"


def _node_fields(fn: Any) -> dict[str, Any]:
    """Correlation fields for a task callable bound to an engine node."""
    owner = getattr(fn, "__self__", None)
    fields: dict[str, Any] = {}
    name = getattr(owner, "name", None)
    if isinstance(name, str):
        fields["node"] = name
    lamport = getattr(owner, "lamport_clock", None)
    if isinstance(lamport, int):
        fields["lamport"] = lamport
    return fields


def _set_counter(counter, value: float) -> None:
    """Assign an absolute value to a cumulative counter.

    The sources here are process-lifetime monotone already (executor
    totals, trace drop counts, profiler aggregates); assignment keeps a
    scrape idempotent where ``inc()`` would double-count."""
    counter.value = float(value)


def _jsonable(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool, type(None)))
