"""The ``repro serve`` daemon: workflows over HTTP on the wall clock.

This package is the real-time front door promised by the pluggable
runtime layer: the same engine stack that powers the paper's simulations
(:mod:`repro.engines`), mounted on the asyncio runtime
(:mod:`repro.runtime.realtime`) and driven by workflow submissions over
local HTTP/JSON instead of a workload generator.

* :mod:`repro.service.core` — :class:`WorkflowService`: owns the control
  system, installs submitted LAWS/schema-JSON documents, starts
  instances, fans live trace events out to subscribers, and carries the
  observability plane (metrics registry, structured logs, profiler,
  flight recorder) through the runtime's duck-typed hooks.
* :mod:`repro.service.http` — the dependency-free HTTP/1.1 front door:
  ``/healthz`` (liveness), ``/readyz`` (readiness, 503 while booting or
  draining), ``/version``, ``POST /workflows``, ``/instances``,
  ``/instances/<id>``, ``/instances/<id>/events`` and ``/events``
  (NDJSON streaming), ``/metrics`` (Prometheus text), ``/debug/trace``
  (JSONL for ``repro analyze``), ``/debug/profile`` (collapsed stacks).
"""

from repro.service.core import WorkflowService, schema_from_dict
from repro.service.http import serve, start_server

__all__ = ["WorkflowService", "schema_from_dict", "serve", "start_server"]
