"""The ``repro serve`` daemon: workflows over HTTP on the wall clock.

This package is the real-time front door promised by the pluggable
runtime layer: the same engine stack that powers the paper's simulations
(:mod:`repro.engines`), mounted on the asyncio runtime
(:mod:`repro.runtime.realtime`) and driven by workflow submissions over
local HTTP/JSON instead of a workload generator.

* :mod:`repro.service.core` — :class:`WorkflowService`: owns the control
  system, installs submitted LAWS/schema-JSON documents, starts
  instances, and fans live trace events out to subscribers.
* :mod:`repro.service.http` — the dependency-free HTTP/1.1 front door
  (``/healthz``, ``/version``, ``POST /workflows``,
  ``/instances/<id>``, ``/instances/<id>/events`` NDJSON streaming).
"""

from repro.service.core import WorkflowService, schema_from_dict
from repro.service.http import serve, start_server

__all__ = ["WorkflowService", "schema_from_dict", "serve", "start_server"]
