"""Crash-durable service state for ``repro serve --state-dir``.

The in-memory engine stores (:mod:`repro.storage`) give the *simulated*
nodes durability across injected crashes; this module gives the real
daemon durability across ``kill -9``.  :class:`ServiceLog` is a
file-backed append-only log of checksummed JSON-line records — the same
``(lsn, kind, payload, crc32)`` shape as :class:`repro.storage.wal.
WalRecord`, reusing :func:`repro.storage.wal.record_checksum` — with
group commit: ``append`` buffers, ``flush`` writes every buffered record
and fsyncs once, so one submission of N instances costs one disk sync.

Record kinds written by :class:`~repro.service.core.WorkflowService`:

``document``
    One installed workflow document, verbatim (``laws`` source text or a
    ``schema`` JSON payload).  Replayed first on recovery so every
    workflow class exists before instances are re-driven.
``submit``
    One acknowledged instance (``instance``, ``workflow``, ``inputs``,
    optional ``deadline``).  Flushed *before* the HTTP response, so an
    acknowledged submission is always durable.
``outcome``
    One terminal instance outcome (``instance``, ``status``,
    ``outputs``, ``finished_at``).
``fragment``
    A per-instance engine-store snapshot (``instance``, ``node``,
    ``state``) captured at outcome time — the AGDB/WFDB fragment the
    paper's agents persist, for post-crash forensics.
``redrive``
    Recovery re-drove an in-flight instance under a fresh id
    (``original``, ``replacement``).  The original id is permanently
    retired; queries for it resolve through the redrive chain.

Torn tails are expected: ``kill -9`` can land mid-``write``.  On load,
a final line that fails to parse or checksum is truncated and reported
via :attr:`ServiceLog.torn_tail`; a *non*-final corrupt record raises
:class:`~repro.errors.StorageError` (silent mid-log corruption is a
recovery hazard, matching the in-memory WAL's ``verify`` contract).

Recovery semantics (documented honestly): committed outcomes are
**at-most-once** — a finished instance is never re-run, and a re-driven
instance gets a fresh id, so no instance id ever produces two outcomes.
Execution of *in-flight* work is **at-least-once**: steps an instance
completed before the crash run again under the replacement id (the
engines' OCR machinery handles intra-run crashes; a full-process kill
loses the engines' in-memory stores, so the service re-submits).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import StorageError
from repro.storage.wal import WalRecord, record_checksum

__all__ = ["ServiceLog", "ServiceState"]

_LOG_NAME = "service.wal"


class ServiceLog:
    """Append-only, checksummed, group-flushed JSON-lines log on disk."""

    def __init__(self, state_dir: str | Path):
        directory = Path(state_dir)
        directory.mkdir(parents=True, exist_ok=True)
        self.path = directory / _LOG_NAME
        self._records: list[WalRecord] = []
        self._buffer: list[WalRecord] = []
        self._next_lsn = 1
        #: True when load dropped a truncated final record (torn write).
        self.torn_tail = False
        self.appends = 0
        self.flushes = 0
        if self.path.exists():
            self._load()
        self._fh = open(self.path, "ab")

    # -- recovery load -----------------------------------------------------

    def _load(self) -> None:
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        # Offsets of each line start, so a torn tail can be truncated away.
        offset = 0
        entries: list[tuple[int, bytes]] = []
        for line in lines:
            entries.append((offset, line))
            offset += len(line) + 1
        valid_end = 0
        last_index = max(
            (i for i, (__, line) in enumerate(entries) if line.strip()),
            default=-1,
        )
        for index, (start, line) in enumerate(entries):
            if not line.strip():
                continue
            record = self._parse_line(line)
            if record is None:
                if index == last_index:
                    self.torn_tail = True
                    break
                raise StorageError(
                    f"service log corruption in {self.path} at byte {start}: "
                    "unreadable record before end of log"
                )
            if record.lsn != self._next_lsn:
                raise StorageError(
                    f"service log {self.path} skips from lsn "
                    f"{self._next_lsn} to {record.lsn}"
                )
            self._records.append(record)
            self._next_lsn = record.lsn + 1
            valid_end = start + len(line) + 1
        if self.torn_tail:
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)

    @staticmethod
    def _parse_line(line: bytes) -> WalRecord | None:
        try:
            doc = json.loads(line)
            record = WalRecord(
                lsn=int(doc["lsn"]), kind=str(doc["kind"]),
                payload=doc["payload"], checksum=int(doc["crc"]),
            )
        except (ValueError, KeyError, TypeError):
            return None
        return record if record.verify() else None

    # -- appending ---------------------------------------------------------

    def append(self, kind: str, payload: Mapping[str, Any]) -> WalRecord:
        """Buffer one record (assigning its LSN); durable after :meth:`flush`."""
        if not isinstance(payload, dict):
            raise StorageError(
                f"service log payload must be a dict, got {type(payload).__name__}"
            )
        lsn = self._next_lsn
        record = WalRecord(lsn=lsn, kind=kind, payload=dict(payload),
                           checksum=record_checksum(lsn, kind, payload))
        self._next_lsn += 1
        self._records.append(record)
        self._buffer.append(record)
        self.appends += 1
        return record

    def flush(self) -> int:
        """Group commit: write every buffered record, one fsync.  Returns
        the number of records made durable."""
        if not self._buffer:
            return 0
        blob = b"".join(
            (json.dumps(
                {"lsn": r.lsn, "kind": r.kind, "payload": r.payload,
                 "crc": r.checksum},
                sort_keys=True, default=str,
            ) + "\n").encode("utf-8")
            for r in self._buffer
        )
        self._fh.write(blob)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        flushed = len(self._buffer)
        self._buffer.clear()
        self.flushes += 1
        return flushed

    # -- introspection -----------------------------------------------------

    def records(self) -> tuple[WalRecord, ...]:
        return tuple(self._records)

    def last_lsn(self) -> int:
        return self._records[-1].lsn if self._records else 0

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        self.flush()
        self._fh.close()


@dataclass
class ServiceState:
    """The replayed view of one :class:`ServiceLog` (recovery boot input)."""

    #: Installed documents, install order: ``{"laws": text}`` or
    #: ``{"schema": payload}``.
    documents: list[dict[str, Any]] = field(default_factory=list)
    #: instance id -> its ``submit`` payload.
    submissions: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: instance id -> its ``outcome`` payload.
    outcomes: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: original id -> replacement id (one hop; chains span incarnations).
    redrives: dict[str, str] = field(default_factory=dict)
    #: (instance, node) -> latest persisted engine-store snapshot.
    fragments: dict[tuple[str, str], dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def from_records(cls, records: Iterable[WalRecord]) -> "ServiceState":
        state = cls()
        for record in records:
            payload = dict(record.payload)
            if record.kind == "document":
                state.documents.append(payload)
            elif record.kind == "submit":
                state.submissions[payload["instance"]] = payload
            elif record.kind == "outcome":
                state.outcomes[payload["instance"]] = payload
            elif record.kind == "redrive":
                state.redrives[payload["original"]] = payload["replacement"]
            elif record.kind == "fragment":
                state.fragments[(payload["instance"], payload["node"])] = payload
            else:
                raise StorageError(
                    f"unknown service log record kind {record.kind!r}"
                )
        return state

    def resolve(self, instance_id: str) -> str:
        """Follow the redrive chain to the id currently carrying the work."""
        seen = set()
        while instance_id in self.redrives:
            if instance_id in seen:  # pragma: no cover - defensive
                raise StorageError(
                    f"redrive cycle involving {instance_id!r}"
                )
            seen.add(instance_id)
            instance_id = self.redrives[instance_id]
        return instance_id

    def inflight(self) -> list[dict[str, Any]]:
        """Submissions needing a re-drive: acknowledged, no outcome, not
        already superseded by a redrive.  Submission (log) order."""
        return [
            payload
            for iid, payload in self.submissions.items()
            if iid not in self.outcomes and iid not in self.redrives
        ]

    def max_instance_index(self) -> int:
        """Highest numeric suffix across every acknowledged instance id.

        Instance ids are ``<schema>-<n>`` with one global counter; the
        recovery boot reserves past this so post-crash ids never collide
        with acknowledged pre-crash ids.
        """
        best = 0
        for iid in self.submissions:
            __, __, tail = iid.rpartition("-")
            if tail.isdigit():
                best = max(best, int(tail))
        return best
