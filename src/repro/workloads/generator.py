"""Parameterized workload generation for the Table 4-6 experiments.

Each generated schema realizes the Table 3 parameters structurally::

    P1 -> ... -> Pp -> O ──> A1 -> ... -> A(r-1) ──┐
                       └──> B1 -> ... -> Bv     ──┴─> J ──> T1..Tf

* ``P*`` — prefix chain (p = s - r - v - f - 1 steps, including the start);
* ``O`` — the rollback origin, splitting into two parallel branches;
* ``A*`` — the failure path: the last A step fails with probability ``pf``
  (at most once), rolling the workflow back to ``O`` — exactly ``r`` steps
  (O plus the A branch);
* ``B*`` — ``v`` steps running in parallel, the threads that must be
  halted/invalidated by the rollback;
* ``J`` — AND-join; ``T*`` — ``f`` parallel terminal steps.

Per rolled-back step, an ``AlwaysReexecute`` CR policy is assigned with
probability ``pr`` (the paper's "probability of step re-execution") and
``ReuseIfInputsUnchanged`` otherwise, so OCR reuse emerges at the paper's
rate.  The first ``w`` prefix steps form the abort-compensation list, and
a ``tune`` workflow input consumed by ``O`` makes input changes roll back
exactly the ``r``-step region.

Coordination requirements (``me``/``ro``/``rd``) are generated as specs
between each schema and itself (class-level coordination, the paper's
order-processing motivation), governing prefix steps; instances conflict
via a ``key`` workflow input drawn from a small pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.programs import ConstantProgram, FailWithProbability
from repro.engines.base import ControlSystem
from repro.errors import WorkloadError
from repro.model.builder import SchemaBuilder
from repro.model.coordination_spec import (
    CoordinationSpec,
    MutualExclusionSpec,
    RelativeOrderSpec,
    RollbackDependencySpec,
)
from repro.model.policies import AlwaysReexecute, ReuseIfInputsUnchanged
from repro.model.schema import StepType, WorkflowSchema
from repro.runtime.rng import SimRandom
from repro.workloads.params import WorkloadParameters

__all__ = ["GeneratedWorkload", "WorkloadGenerator", "WorkloadRun"]


@dataclass
class GeneratedWorkload:
    """Schemas + specs + bookkeeping produced by the generator."""

    params: WorkloadParameters
    schemas: list[WorkflowSchema]
    specs: list[CoordinationSpec]
    #: schema name -> the step that may fail (for targeted assertions).
    failure_steps: dict[str, str]
    #: schema name -> rollback origin of that failure.
    origins: dict[str, str]


@dataclass
class WorkloadRun:
    """Result of driving a workload through a control system."""

    instances: list[str] = field(default_factory=list)
    input_changed: list[str] = field(default_factory=list)
    aborted_requests: list[str] = field(default_factory=list)


class WorkloadGenerator:
    """Builds Table-3-shaped schemas and drives them through a system."""

    def __init__(self, params: WorkloadParameters, seed: int = 0,
                 key_pool: int = 2, coordination: bool = False):
        self.params = params
        self.rng = SimRandom(seed)
        self.key_pool = max(1, key_pool)
        self.coordination = coordination

    # -- schema construction ---------------------------------------------------

    def step_names(self, index: int) -> dict[str, Any]:
        """The structural step roles for schema ``index`` (see module doc)."""
        p = self.params
        prefix_len = p.s - p.r - p.v - p.f - 1
        if prefix_len < 1:
            raise WorkloadError("parameters leave no room for a prefix chain")
        prefix = [f"P{i+1}" for i in range(prefix_len)]
        origin = "O"
        branch_a = [f"A{i+1}" for i in range(p.r - 1)]
        branch_b = [f"B{i+1}" for i in range(p.v)]
        join = "J"
        terminals = [f"T{i+1}" for i in range(p.f)]
        return {
            "prefix": prefix,
            "origin": origin,
            "branch_a": branch_a,
            "branch_b": branch_b,
            "join": join,
            "terminals": terminals,
        }

    def build_schema(self, index: int) -> WorkflowSchema:
        p = self.params
        roles = self.step_names(index)
        name = f"WL{index:02d}"
        rng = self.rng.stream(f"schema:{index}")
        builder = SchemaBuilder(name, inputs=["key", "tune"])

        failing_step = roles["branch_a"][-1] if roles["branch_a"] else roles["origin"]
        rollback_region = [roles["origin"], *roles["branch_a"]]

        def policy_for(step: str):
            if step in rollback_region:
                if rng.random() < p.pr:
                    return AlwaysReexecute()
                return ReuseIfInputsUnchanged()
            return ReuseIfInputsUnchanged()

        previous = None
        for step in roles["prefix"]:
            inputs = ["WF.key"] if previous is None else [f"{previous}.out"]
            builder.step(step, program=f"{name}.{step}", inputs=inputs,
                         outputs=["out"], cr_policy=policy_for(step),
                         step_type=StepType.UPDATE)
            if previous is not None:
                builder.arc(previous, step)
            previous = step

        origin = roles["origin"]
        builder.step(origin, program=f"{name}.{origin}",
                     inputs=[f"{previous}.out", "WF.tune"], outputs=["out"],
                     cr_policy=policy_for(origin))
        builder.arc(previous, origin)

        prev_a = origin
        for step in roles["branch_a"]:
            builder.step(step, program=f"{name}.{step}",
                         inputs=[f"{prev_a}.out"], outputs=["out"],
                         cr_policy=policy_for(step))
            builder.arc(prev_a, step)
            prev_a = step

        prev_b = origin
        for step in roles["branch_b"]:
            builder.step(step, program=f"{name}.{step}",
                         inputs=[f"{prev_b}.out"], outputs=["out"],
                         cr_policy=policy_for(step))
            builder.arc(prev_b, step)
            prev_b = step

        join = roles["join"]
        join_kind = "and" if prev_a != prev_b else "none"
        builder.step(join, program=f"{name}.{join}",
                     inputs=[f"{prev_a}.out"], outputs=["out"],
                     join=join_kind if prev_a != prev_b else "none")
        builder.arc(prev_a, join)
        if prev_b != prev_a:
            builder.arc(prev_b, join)

        for terminal in roles["terminals"]:
            builder.step(terminal, program=f"{name}.{terminal}",
                         inputs=[f"{join}.out"], outputs=["out"])
            builder.arc(join, terminal)

        builder.rollback_point(failing_step, origin)
        if p.w:
            compensated = roles["prefix"][: p.w]
            builder.abort_compensation(*compensated)
        builder.output("result", f"{roles['terminals'][0]}.out")
        return builder.build()

    def build(self) -> GeneratedWorkload:
        schemas = [self.build_schema(i) for i in range(self.params.c)]
        specs: list[CoordinationSpec] = []
        failure_steps: dict[str, str] = {}
        origins: dict[str, str] = {}
        for index, schema in enumerate(schemas):
            roles = self.step_names(index)
            failing = roles["branch_a"][-1] if roles["branch_a"] else roles["origin"]
            failure_steps[schema.name] = failing
            origins[schema.name] = roles["origin"]
            if self.coordination:
                specs.extend(self._specs_for(schema.name, roles))
        return GeneratedWorkload(
            params=self.params,
            schemas=schemas,
            specs=specs,
            failure_steps=failure_steps,
            origins=origins,
        )

    def _specs_for(self, name: str, roles: dict[str, Any]) -> list[CoordinationSpec]:
        """Class-level coordination specs governing prefix steps."""
        p = self.params
        specs: list[CoordinationSpec] = []
        chain = [*roles["prefix"], roles["origin"], *roles["branch_a"]]
        if p.ro >= 1:
            steps = tuple(chain[: max(1, p.ro)])
            specs.append(RelativeOrderSpec(
                name=f"{name}-ro", schema_a=name, schema_b=name,
                steps_a=steps, steps_b=steps, conflict_key="WF.key",
            ))
        if p.me >= 1:
            first = chain[0]
            last = chain[min(p.me - 1, len(chain) - 1)]
            if first != last or p.me == 1:
                specs.append(MutualExclusionSpec(
                    name=f"{name}-mx", schema_a=name, schema_b=name,
                    region_a=(first, last), region_b=(first, last),
                    conflict_key="WF.key",
                ))
        if p.rd >= 1:
            specs.append(RollbackDependencySpec(
                name=f"{name}-rd", schema_a=name, schema_b=name,
                trigger_step_a=roles["origin"], rollback_to_b=chain[0],
                conflict_key="WF.key",
            ))
        return specs

    # -- installation ------------------------------------------------------------

    def install(self, system: ControlSystem, workload: GeneratedWorkload) -> None:
        """Register schemas, coordination specs and (failing) programs."""
        p = self.params
        for schema in workload.schemas:
            system.register_schema(schema)
            failing = workload.failure_steps[schema.name]
            for step in schema.steps.values():
                # Deterministic outputs (not attempt-tagged): a re-executed
                # step "does not produce any new results", so downstream
                # steps remain OCR-reusable — the paper's common case.
                program = ConstantProgram(
                    {out: f"{schema.name}.{step.name}.{out}" for out in step.outputs}
                )
                if step.name == failing and p.pf > 0:
                    system.register_program(
                        step.program,
                        FailWithProbability(program, p.pf, max_failures=1),
                    )
                else:
                    system.register_program(step.program, program)
        for spec in workload.specs:
            system.add_coordination(spec)

    # -- driving -------------------------------------------------------------------

    def drive(
        self,
        system: ControlSystem,
        workload: GeneratedWorkload,
        instances_per_schema: int | None = None,
        arrival_gap: float = 5.0,
    ) -> WorkloadRun:
        """Start instances and schedule input changes/aborts per Table 3."""
        p = self.params
        count = instances_per_schema if instances_per_schema is not None else p.i
        run = WorkloadRun()
        # Independent streams per administrative decision so both rare
        # mechanisms are exercised at their Table 3 rates regardless of how
        # the draws interleave.
        pi_rng = self.rng.stream("admin:input-change")
        pa_rng = self.rng.stream("admin:abort")
        # Input changes land just after the rollback-origin step completes,
        # whatever the architecture's pacing: one engine/agent hop per step
        # of the prefix chain plus the origin itself, plus slack.
        if system.architecture in ("centralized", "parallel"):
            # probe round-trip (when a > 1) + dispatch round-trip + service
            per_step = 4.3 if p.a > 1 else 2.2
        else:
            per_step = 1.2  # one packet hop + service
        origin_depth = (p.s - p.r - p.v - p.f - 1) + 1
        change_delay = per_step * (origin_depth + 1.5)
        at = 0.0
        for n in range(count):
            for schema in workload.schemas:
                key = f"K{n % self.key_pool}"
                instance = system.start_workflow(
                    schema.name, {"key": key, "tune": 0}, delay=at
                )
                run.instances.append(instance)
                change = pi_rng.random() < p.pi
                abort = pa_rng.random() < p.pa
                if change:
                    system.change_inputs(
                        instance, {"tune": n + 1}, delay=at + change_delay
                    )
                    run.input_changed.append(instance)
                elif abort:
                    system.abort_workflow(instance, delay=at + arrival_gap)
                    run.aborted_requests.append(instance)
                at += arrival_gap
        return run
