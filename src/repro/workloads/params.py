"""Table 3 of the paper: the parameters used in the performance analysis.

The default values are reverse-engineered from the "Normalized Value"
columns of Tables 4-6 (the paper gives ranges but not the chosen points):

====================  ======  ==========================================
``2·s·a = 60``        s=15, a=2
``s·a + f = 32``      f=2
``l·r·pf = 0.5·l``    r=5, pf=0.1
``(r+v)·pf·a = 1.8``  v=4
``l·w·pa = 0.05·l``   w=2, pa=0.025
``l·r·pi = 0.125·l``  pi=0.025
``2·r·pi·pr·a=0.125`` pr=0.25
``(me+ro+rd)·a·d·s = 150``  me=2, ro=2, rd=1, d=1
``l·s/e = 3.75·l``    e=4
``l·s/z = 0.3·l``     z=50
====================  ======  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import WorkloadError

__all__ = ["PAPER_DEFAULTS", "TABLE3_RANGES", "WorkloadParameters"]

#: The "Value Range" column of Table 3.
TABLE3_RANGES: dict[str, tuple[float, float]] = {
    "s": (5, 25),
    "c": (1, 20),
    "i": (1, 1000),
    "e": (1, 8),
    "z": (1, 100),
    "a": (1, 4),
    "d": (0, 2),
    "r": (1, 10),
    "v": (0, 8),
    "f": (1, 4),
    "w": (0, 4),
    "me": (0, 4),
    "ro": (0, 4),
    "rd": (0, 2),
    "pf": (0.0, 0.2),
    "pi": (0.0, 0.05),
    "pa": (0.0, 0.05),
    "pr": (0.0, 0.5),
}


@dataclass(frozen=True)
class WorkloadParameters:
    """One point in the Table 3 parameter space.

    Field names follow the paper's symbols exactly; ``l`` (navigation load
    per step, in instructions) is kept symbolic — loads are reported in
    multiples of ``l``.
    """

    s: int = 15  # steps per workflow
    c: int = 20  # workflow schemas
    i: int = 10  # concurrent instances per schema
    e: int = 4  # engines (parallel control)
    z: int = 50  # agents (distributed control)
    a: int = 2  # eligible agents per step
    d: int = 1  # conflicting definitions per step
    r: int = 5  # steps rolled back on a failure
    v: int = 4  # steps invalidated on a step failure
    f: int = 2  # final (terminal) steps per workflow
    w: int = 2  # steps compensated on a workflow abort
    me: int = 2  # steps/WF needing mutual exclusion
    ro: int = 2  # steps/WF needing relative ordering
    rd: int = 1  # steps/WF having rollback dependency
    pf: float = 0.1  # probability of logical step failure
    pi: float = 0.025  # probability of workflow input change
    pa: float = 0.025  # probability of workflow abort
    pr: float = 0.25  # probability of step re-execution (vs OCR reuse)

    def __post_init__(self) -> None:
        for name, (low, high) in TABLE3_RANGES.items():
            value = getattr(self, name)
            if not low <= value <= high:
                raise WorkloadError(
                    f"parameter {name}={value} outside Table 3 range "
                    f"[{low}, {high}]"
                )
        if self.s < self.r + self.v + self.f + 2:
            # The Table-3 workload shape needs room for a prefix, the
            # rollback region (r), the halted parallel branch (v), the join
            # and the terminal fan (f) — see repro.workloads.generator.
            raise WorkloadError(
                f"inconsistent shape: s={self.s} too small for r={self.r}, "
                f"v={self.v}, f={self.f} (need s >= r+v+f+2)"
            )
        if self.me + self.ro + self.rd > self.s:
            raise WorkloadError("more governed steps than steps per workflow")

    @property
    def coordination_degree(self) -> int:
        """The paper's ``me + ro + rd`` factor."""
        return self.me + self.ro + self.rd

    def evolve(self, **changes: Any) -> "WorkloadParameters":
        return replace(self, **changes)

    def describe(self) -> str:
        pairs = ", ".join(
            f"{name}={getattr(self, name)}" for name in TABLE3_RANGES
        )
        return f"WorkloadParameters({pairs})"


#: The calibration point reproducing the paper's normalized values.
PAPER_DEFAULTS = WorkloadParameters()
