"""Canonical scenarios from the paper's motivating examples.

* :func:`order_processing` — Figure 2: order-processing workflows whose
  conflicting steps (same part) must execute in arrival order;
* :func:`figure3_workflow` — Figure 3: if-then-else branching where a step
  failure triggers partial rollback, re-execution takes the other branch,
  and the abandoned branch is compensated;
* :func:`travel_booking` — the classic Saga-style itinerary with a
  compensation dependent set and OCR policies, used by the OCR-savings
  benchmark and the quickstart example.

Each factory returns a :class:`Scenario`: schemas, coordination specs and
a ``program`` map to register, so any control system can run it::

    scenario = travel_booking()
    scenario.install(system)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.programs import (
    FailEveryNth,
    FunctionProgram,
    NoopProgram,
    StepProgram,
)
from repro.engines.base import ControlSystem
from repro.model.builder import SchemaBuilder
from repro.model.coordination_spec import CoordinationSpec, RelativeOrderSpec
from repro.model.policies import (
    AlwaysReexecute,
    IncrementalIfInputsChanged,
    ReuseIfInputsUnchanged,
)
from repro.model.schema import WorkflowSchema

__all__ = ["Scenario", "figure3_workflow", "order_processing", "travel_booking"]


@dataclass
class Scenario:
    """A ready-to-install bundle of schemas, specs and programs."""

    name: str
    schemas: list[WorkflowSchema]
    specs: list[CoordinationSpec] = field(default_factory=list)
    programs: dict[str, StepProgram] = field(default_factory=dict)

    def install(self, system: ControlSystem) -> None:
        for schema in self.schemas:
            system.register_schema(schema)
        for name, program in self.programs.items():
            system.register_program(name, program)
        for spec in self.specs:
            system.add_coordination(spec)


def order_processing(parts_in_stock: Mapping[str, int] | None = None) -> Scenario:
    """Figure 2: order fulfilment with FIFO relative ordering per part.

    Steps: check stock -> reserve parts -> schedule machine -> ship.
    Orders for the same part must reserve and schedule in arrival order,
    otherwise "a workflow processing an earlier order may not be able to
    continue due to lack of resources".
    """
    stock = dict(parts_in_stock or {"gasket": 100, "blower": 100})
    builder = SchemaBuilder("OrderProcessing", inputs=["part", "qty"])
    builder.step("CheckStock", program="order.check", step_type="query",
                 inputs=["WF.part", "WF.qty"], outputs=["avail"], cost=1.0)
    builder.step("Reserve", program="order.reserve", resources={"inventory"},
                 inputs=["WF.part", "WF.qty", "CheckStock.avail"],
                 outputs=["rsv"], cost=2.0)
    builder.step("Schedule", program="order.schedule", resources={"machines"},
                 inputs=["Reserve.rsv"], outputs=["slot"], cost=2.0)
    builder.step("Ship", program="order.ship", inputs=["Schedule.slot"],
                 outputs=["tracking"], cost=1.0)
    builder.sequence("CheckStock", "Reserve", "Schedule", "Ship")
    builder.output("tracking", "Ship.tracking")
    schema = builder.build()

    def check(inputs, ctx):
        part = inputs["WF.part"]
        return {"avail": stock.get(part, 0) >= inputs["WF.qty"]}

    def reserve(inputs, ctx):
        part = inputs["WF.part"]
        qty = inputs["WF.qty"]
        if not inputs["CheckStock.avail"] or stock.get(part, 0) < qty:
            raise RuntimeError(f"insufficient stock of {part}")
        stock[part] = stock[part] - qty
        return {"rsv": f"{part}x{qty}"}

    spec = RelativeOrderSpec(
        name="order-fifo",
        schema_a="OrderProcessing",
        schema_b="OrderProcessing",
        steps_a=("Reserve", "Schedule"),
        steps_b=("Reserve", "Schedule"),
        conflict_key="WF.part",
    )
    return Scenario(
        name="order-processing",
        schemas=[schema],
        specs=[spec],
        programs={
            "order.check": FunctionProgram(check),
            "order.reserve": FunctionProgram(reserve),
            "order.schedule": FunctionProgram(
                lambda i, c: {"slot": f"slot@{c.now:.0f}"}
            ),
            "order.ship": FunctionProgram(
                lambda i, c: {"tracking": f"TRK-{c.instance_id}"}
            ),
        },
    )


def figure3_workflow(fail_attempts: frozenset[int] = frozenset({1})) -> Scenario:
    """Figure 3: if-then-else rollback with a branch change on re-execution.

    S2 decides the branch; S4 (top branch) fails on its first attempt; the
    workflow rolls back to S2, whose re-execution produces different data
    and takes the bottom branch — the effect of the abandoned S3 must be
    compensated.
    """
    builder = SchemaBuilder("Figure3", inputs=["load"])
    builder.step("S1", program="fig3.s1", inputs=["WF.load"], outputs=["x"])
    builder.step("S2", program="fig3.s2", inputs=["S1.x"], outputs=["route"],
                 cr_policy=AlwaysReexecute())
    builder.step("S3", program="fig3.s3", outputs=["top"])
    builder.step("S4", program="fig3.s4", inputs=["S3.top"], outputs=["y"])
    builder.step("S5", program="fig3.s5", outputs=["y"])
    builder.step("S6", program="fig3.s6", join="xor", outputs=["res"])
    builder.arc("S1", "S2")
    builder.branch("S2", [("S3", "S2.route == 'top'")], otherwise="S5")
    builder.arc("S3", "S4")
    builder.arc("S4", "S6")
    builder.arc("S5", "S6")
    builder.rollback_point("S4", "S2")
    builder.output("result", "S6.res")
    schema = builder.build()
    return Scenario(
        name="figure3",
        schemas=[schema],
        programs={
            "fig3.s1": FunctionProgram(lambda i, c: {"x": i["WF.load"]}),
            # First execution routes top; after the failure feedback the
            # re-execution routes bottom.
            "fig3.s2": FunctionProgram(
                lambda i, c: {"route": "top" if c.attempt == 1 else "bottom"}
            ),
            "fig3.s3": NoopProgram(("top",)),
            "fig3.s4": FailEveryNth(NoopProgram(("y",)), fail_attempts),
            "fig3.s5": NoopProgram(("y",)),
            "fig3.s6": FunctionProgram(lambda i, c: {"res": "shipped"}),
        },
    )


def travel_booking(
    flight_fails_on: frozenset[int] = frozenset(),
    invoice_fails_on: frozenset[int] = frozenset({1}),
) -> Scenario:
    """A travel itinerary exercising OCR and compensation dependent sets.

    Book flight and hotel (dependent set: the hotel depends on the flight
    dates, so they compensate in reverse order), book a car in parallel,
    then invoice.  The invoice step fails on its first attempt by default,
    rolling back to the flight; with OCR, unchanged bookings are *reused*
    rather than cancelled and re-booked — the paper's headline saving.
    """
    builder = SchemaBuilder("TravelBooking", inputs=["traveller", "dates"])
    builder.step("Plan", program="travel.plan", inputs=["WF.dates"],
                 outputs=["itinerary"], cost=1.0)
    builder.step("BookFlight", program="travel.flight",
                 inputs=["Plan.itinerary"], outputs=["pnr"], cost=5.0,
                 compensation_cost=4.0,
                 cr_policy=ReuseIfInputsUnchanged())
    builder.step("BookHotel", program="travel.hotel",
                 inputs=["BookFlight.pnr"], outputs=["conf"], cost=4.0,
                 compensation_cost=3.0,
                 cr_policy=IncrementalIfInputsChanged(0.25))
    builder.step("BookCar", program="travel.car", inputs=["Plan.itinerary"],
                 outputs=["car"], cost=2.0,
                 cr_policy=ReuseIfInputsUnchanged())
    builder.step("Invoice", program="travel.invoice", join="and",
                 inputs=["BookHotel.conf", "BookCar.car"], outputs=["total"],
                 cost=1.0)
    builder.arc("Plan", "BookFlight")
    builder.arc("BookFlight", "BookHotel")
    builder.arc("Plan", "BookCar")
    builder.join("Invoice", ["BookHotel", "BookCar"], kind="and")
    builder.compensation_set("BookFlight", "BookHotel")
    builder.rollback_point("Invoice", "BookFlight")
    builder.abort_compensation("BookFlight", "BookHotel", "BookCar")
    builder.output("invoice", "Invoice.total")
    schema = builder.build()
    return Scenario(
        name="travel-booking",
        schemas=[schema],
        programs={
            "travel.plan": FunctionProgram(
                lambda i, c: {"itinerary": f"IT:{i['WF.dates']}"}
            ),
            "travel.flight": FailEveryNth(NoopProgram(("pnr",)), flight_fails_on),
            "travel.hotel": NoopProgram(("conf",)),
            "travel.car": NoopProgram(("car",)),
            "travel.invoice": FailEveryNth(
                FunctionProgram(lambda i, c: {"total": 1240.0}), invoice_fails_on
            ),
        },
    )
