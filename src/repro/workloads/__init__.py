"""Workloads: Table 3 parameters, the shaped generator, canonical scenarios."""

from repro.workloads.generator import GeneratedWorkload, WorkloadGenerator, WorkloadRun
from repro.workloads.params import PAPER_DEFAULTS, TABLE3_RANGES, WorkloadParameters
from repro.workloads.scenarios import (
    Scenario,
    figure3_workflow,
    order_processing,
    travel_booking,
)

__all__ = [
    "GeneratedWorkload",
    "PAPER_DEFAULTS",
    "Scenario",
    "TABLE3_RANGES",
    "WorkloadGenerator",
    "WorkloadParameters",
    "WorkloadRun",
    "figure3_workflow",
    "order_processing",
    "travel_booking",
]
