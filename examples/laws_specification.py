"""LAWS: specify workflows and coordination requirements as text.

The paper's specification language LAWS expresses failure handling and
coordinated execution requirements declaratively; the run-time converts
them to ECA rules.  This example writes an order-processing pair in LAWS —
including a rollback point, a compensation dependent set, CR conditions
and all three coordination building blocks — loads it, and runs it.

Run:  python examples/laws_specification.py
"""

from repro import DistributedControlSystem, SystemConfig, load_laws
from repro.core.programs import FunctionProgram, NoopProgram

SPEC = """
# Order fulfilment, specified in LAWS.
workflow Orders {
  inputs part, qty;
  step Check    program ord.check  type query  reads WF.part, WF.qty writes ok    cost 1;
  step Reserve  program ord.reserve            reads Check.ok        writes rsv   cost 3
                compensation cost 2;
  step Pick     program ord.pick               reads Reserve.rsv     writes box   cost 2;
  step Ship     program ord.ship               reads Pick.box        writes trk   cost 1;
  arc Check -> Reserve;
  arc Reserve -> Pick;
  arc Pick -> Ship;

  on failure of Ship rollback to Reserve;
  compensation set { Reserve, Pick };
  on abort compensate Reserve, Pick;

  cr Reserve reuse when "prev.Check.ok == new.Check.ok";
  cr Pick incremental 0.25;

  output tracking = Ship.trk;
}

workflow Billing {
  inputs part;
  step Open  program bill.open  reads WF.part  writes inv;
  step Close program bill.close reads Open.inv writes receipt;
  arc Open -> Close;
  output receipt = Close.receipt;
}

# Orders for the same part reserve and ship in arrival order.
order part_fifo between Orders(Reserve, Ship) and Orders(Reserve, Ship) on WF.part;
# Billing for a part never interleaves with its reservation region.
mutex inventory_lock between Orders[Reserve..Pick] and Billing[Open..Close] on WF.part;
# If an order rolls back past Reserve, its bill reopens too.
rollback_dependency rebill when Orders.Reserve rolls back force Billing to Open on WF.part;
"""


def main():
    document = load_laws(SPEC)
    print("parsed workflows:", [schema.name for schema in document.schemas])
    print("parsed specs:    ", [(type(s).__name__, s.name) for s in document.specs])

    system = DistributedControlSystem(SystemConfig(seed=3), num_agents=6,
                                      agents_per_step=2)
    document.install(system)
    for name in ("ord.check", "ord.reserve", "ord.pick", "ord.ship",
                 "bill.open", "bill.close"):
        outputs = {"ord.check": ("ok",), "ord.reserve": ("rsv",),
                   "ord.pick": ("box",), "ord.ship": ("trk",),
                   "bill.open": ("inv",), "bill.close": ("receipt",)}[name]
        system.register_program(name, NoopProgram(outputs))

    order_a = system.start_workflow("Orders", {"part": "gasket", "qty": 4})
    order_b = system.start_workflow("Orders", {"part": "gasket", "qty": 1},
                                    delay=0.3)
    bill = system.start_workflow("Billing", {"part": "gasket"}, delay=0.2)
    system.run()

    for instance in (order_a, order_b, bill):
        outcome = system.outcome(instance)
        print(f"{instance}: {outcome.status.value}  {outcome.outputs}")

    times = {(r.detail["instance"], r.detail["step"]): r.time
             for r in system.trace.filter(kind="step.done")}
    # The relative-ordering invariant: whichever order executed Reserve
    # first (the *leading* workflow, per the paper — not necessarily the
    # first submitted) must also Ship first.
    leader, lagger = (
        (order_a, order_b)
        if times[(order_a, "Reserve")] < times[(order_b, "Reserve")]
        else (order_b, order_a)
    )
    assert times[(leader, "Ship")] < times[(lagger, "Ship")]
    print(f"\n{leader} led (first Reserve) and shipped first; the mutex "
          "serialized billing against the reservation regions.")


if __name__ == "__main__":
    main()
