"""OCR demo: failure handling without throwing away work.

The travel-booking itinerary books a flight, hotel and car, then invoices.
The invoice step fails on its first attempt, rolling the workflow back to
BookFlight.  Under the paper's opportunistic compensation and re-execution
(OCR) strategy, the bookings whose inputs did not change are *reused* —
nothing is cancelled, nothing re-booked — and the invoice simply retries.

For contrast, the Saga-style baseline (AlwaysReexecute on every step)
cancels and re-books everything, paying full compensation and execution
cost for the identical outcome.

Run:  python examples/travel_booking_recovery.py
"""

from repro import AlwaysReexecute, DistributedControlSystem, SystemConfig
from repro.workloads import travel_booking


def run(saga_baseline):
    system = DistributedControlSystem(SystemConfig(seed=4), num_agents=5,
                                      agents_per_step=1)
    scenario = travel_booking()
    if saga_baseline:
        for schema in scenario.schemas:
            for step in schema.cr_policies:
                schema.cr_policies[step] = AlwaysReexecute()
    scenario.install(system)
    instance = system.start_workflow(
        "TravelBooking", {"traveller": "M. Kamath", "dates": "1998-07"}
    )
    system.run()
    outcome = system.outcome(instance)
    reuses = system.trace.count("step.reuse")
    compensations = system.trace.count("step.compensated")
    work = system.metrics.total_work()
    return outcome, reuses, compensations, work, system


def main():
    print("=== OCR (the paper's strategy) ===")
    outcome, reuses, compensations, work, system = run(saga_baseline=False)
    print(system.trace.render())
    print(f"\noutcome: {outcome.status.value}, invoice={outcome.outputs['invoice']}")
    print(f"reused bookings: {reuses}, compensations: {compensations}, "
          f"total work: {work:.0f} cost units")

    print("\n=== Saga baseline (compensate everything) ===")
    outcome_s, reuses_s, compensations_s, work_s, __ = run(saga_baseline=True)
    print(f"outcome: {outcome_s.status.value}, invoice={outcome_s.outputs['invoice']}")
    print(f"reused bookings: {reuses_s}, compensations: {compensations_s}, "
          f"total work: {work_s:.0f} cost units")

    saving = 100 * (1 - work / work_s)
    print(f"\nSame outcome, {saving:.0f}% less work under OCR — the paper's "
          "'considerable savings' for steps like moving inventory or, here, "
          "booking travel.")
    assert outcome.committed and outcome_s.committed
    assert work < work_s


if __name__ == "__main__":
    main()
