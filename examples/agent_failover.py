"""Agent failures in distributed control (paper Section 5.2).

Two runs of the same three-step workflow, crashing the agent assigned to
the middle step just after the work lands on it:

* when the step is an **update** step, the peers must wait: "the successor
  agent has to wait for the failed agent to come up" — the workflow stalls
  until the agent recovers and resumes from its AGDB write-ahead log;
* when the step is a **query** step, a deterministic eligible peer takes
  over and the workflow finishes without the crashed agent.

Run:  python examples/agent_failover.py
"""

from repro import DistributedControlSystem, SchemaBuilder, SystemConfig
from repro.engines.distributed import elect_executor


def build(step_type):
    builder = SchemaBuilder("Failover", inputs=["x"])
    builder.step("Prepare", program="f.prep", inputs=["WF.x"], outputs=["out"])
    builder.step("Lookup", program="f.lookup", step_type=step_type,
                 inputs=["Prepare.out"], outputs=["out"])
    builder.step("Finish", program="f.finish", inputs=["Lookup.out"],
                 outputs=["out"])
    builder.sequence("Prepare", "Lookup", "Finish")
    builder.output("result", "Finish.out")
    return builder.build()


def run(step_type, recover_at):
    system = DistributedControlSystem(
        SystemConfig(seed=6, step_status_timeout=5.0,
                     step_status_poll_interval=3.0),
        num_agents=4, agents_per_step=2,
    )
    schema = build(step_type)
    system.register_schema(schema)
    for step in schema.steps.values():
        system.register_program(step.program,
                                __import__("repro.core.programs",
                                           fromlist=["NoopProgram"]).NoopProgram(step.outputs))
    instance = system.start_workflow("Failover", {"x": 1})
    victim = elect_executor(system.assignment.eligible("Failover", "Lookup"),
                            "Failover", instance, "Lookup")
    # Crash just after the packet reaches the assigned executor.
    system.simulator.schedule(1.15, system.agent(victim).crash)
    if recover_at is not None:
        system.simulator.schedule(recover_at, system.agent(victim).recover)
    system.run(until=300.0)
    outcome = system.outcome(instance)
    done = [r for r in system.trace.filter(kind="step.done")
            if r.detail["step"] == "Lookup"]
    takeovers = system.trace.filter(kind="step.takeover")
    return victim, outcome, done, takeovers


def main():
    print("=== update step: the workflow waits for the crashed agent ===")
    victim, outcome, done, takeovers = run("update", recover_at=60.0)
    print(f"crashed agent: {victim}; recovered at t=60")
    print(f"Lookup completed at t={done[0].time:.1f} (after recovery), "
          f"takeovers: {len(takeovers)}")
    print(f"workflow: {outcome.status.value}")
    assert done[0].time >= 60.0 and not takeovers

    print("\n=== query step: a peer takes over deterministically ===")
    victim, outcome, done, takeovers = run("query", recover_at=None)
    print(f"crashed agent: {victim} (never recovers)")
    print(f"Lookup completed at t={done[0].time:.1f} by "
          f"{done[0].node} after takeover: "
          f"{[(t.node, t.detail['was']) for t in takeovers]}")
    print(f"workflow: {outcome.status.value}")
    assert outcome.committed and takeovers
    print("\nBoth behaviours match the paper: updates wait for the failed "
          "agent; queries re-execute at an available eligible agent.")


if __name__ == "__main__":
    main()
