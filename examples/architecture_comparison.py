"""Mini Tables 4-6: run one workload under all three architectures.

Drives the same Table-3-shaped workload through centralized, parallel and
distributed control and prints, per architecture, the per-instance message
counts and per-node loads next to the paper's analytic model — a compact
rendition of the paper's Section 6 comparison (the full benchmark harness
in benchmarks/ does this at scale).

Run:  python examples/architecture_comparison.py
"""

from repro import (
    CentralizedControlSystem,
    DistributedControlSystem,
    Mechanism,
    ParallelControlSystem,
    SystemConfig,
    WorkloadParameters,
)
from repro.analysis import architecture_model, format_table, measure_costs
from repro.workloads import WorkloadGenerator

PARAMS = WorkloadParameters(c=2, i=10)


def run(architecture):
    config = SystemConfig(seed=17, trace=False)
    if architecture == "centralized":
        system = CentralizedControlSystem(config, num_agents=4,
                                          agents_per_step=PARAMS.a)
        nodes = lambda: system.engine_nodes()
    elif architecture == "parallel":
        system = ParallelControlSystem(config, num_engines=PARAMS.e,
                                       num_agents=4, agents_per_step=PARAMS.a)
        nodes = lambda: system.engine_nodes()
    else:
        system = DistributedControlSystem(config, num_agents=PARAMS.z,
                                          agents_per_step=PARAMS.a)
        nodes = lambda: system.agent_names()
    generator = WorkloadGenerator(PARAMS, seed=17, coordination=False)
    workload = generator.build()
    generator.install(system, workload)
    generator.drive(system, workload)
    system.run()
    return measure_costs(architecture, system.metrics, nodes())


def main():
    rows = []
    for architecture in ("centralized", "parallel", "distributed"):
        measured = run(architecture)
        model = architecture_model(architecture, PARAMS)
        rows.append([
            architecture,
            f"{measured.messages[Mechanism.NORMAL]:.1f}",
            f"{model.messages(Mechanism.NORMAL):.0f}",
            f"{measured.load[Mechanism.NORMAL]:.3f}",
            f"{model.load(Mechanism.NORMAL):.3f}",
            f"{measured.messages[Mechanism.FAILURE]:.2f}",
            f"{model.messages(Mechanism.FAILURE):.2f}",
        ])
    print("Per-instance costs, measured vs the paper's analytic model "
          f"(s={PARAMS.s}, a={PARAMS.a}, e={PARAMS.e}, z={PARAMS.z})")
    print(format_table(
        ["architecture", "msgs meas.", "msgs model", "load meas.",
         "load model", "fail msgs meas.", "fail msgs model"],
        rows,
    ))
    print()
    print("Shape check (paper Table 7): distributed moves the fewest messages")
    print("and loads each node least; the central engine is the bottleneck.")


if __name__ == "__main__":
    main()
