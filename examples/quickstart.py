"""Quickstart: define a workflow, run it under distributed control.

Builds a small order-handling workflow with an if-then-else branch, runs
one instance through the distributed architecture (agents navigating via
workflow packets), and prints the full enactment trace.

Run:  python examples/quickstart.py
"""

from repro import DistributedControlSystem, SchemaBuilder, SystemConfig
from repro.core.programs import FunctionProgram


def build_schema():
    builder = SchemaBuilder("Quickstart", inputs=["amount"])
    builder.step("Validate", program="q.validate", inputs=["WF.amount"],
                 outputs=["ok", "value"])
    builder.step("AutoApprove", program="q.auto", inputs=["Validate.value"],
                 outputs=["decision"])
    builder.step("ManualReview", program="q.manual", inputs=["Validate.value"],
                 outputs=["decision"])
    builder.step("Notify", program="q.notify", join="xor", outputs=["msg"])
    builder.branch("Validate", [("AutoApprove", "Validate.value < 1000")],
                   otherwise="ManualReview")
    builder.arc("AutoApprove", "Notify")
    builder.arc("ManualReview", "Notify")
    builder.output("message", "Notify.msg")
    return builder.build()


def main():
    system = DistributedControlSystem(SystemConfig(seed=42), num_agents=5,
                                      agents_per_step=2)
    system.register_schema(build_schema())
    system.register_program("q.validate", FunctionProgram(
        lambda inputs, ctx: {"ok": True, "value": inputs["WF.amount"]}))
    system.register_program("q.auto", FunctionProgram(
        lambda inputs, ctx: {"decision": "approved"}))
    system.register_program("q.manual", FunctionProgram(
        lambda inputs, ctx: {"decision": "escalated"}))
    system.register_program("q.notify", FunctionProgram(
        lambda inputs, ctx: {"msg": f"order handled at t={ctx.now:.1f}"}))

    small = system.start_workflow("Quickstart", {"amount": 250})
    large = system.start_workflow("Quickstart", {"amount": 5000}, delay=0.5)
    system.run()

    print("=== enactment trace ===")
    print(system.trace.render())
    print()
    for instance in (small, large):
        outcome = system.outcome(instance)
        print(f"{instance}: {outcome.status.value}  outputs={outcome.outputs}")

    done = {(r.detail['instance'], r.detail['step'])
            for r in system.trace.filter(kind="step.done")}
    assert (small, "AutoApprove") in done
    assert (large, "ManualReview") in done
    print("\nsmall order auto-approved, large order manually reviewed — "
          "the XOR branch rules fired as specified.")


if __name__ == "__main__":
    main()
