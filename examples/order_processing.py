"""Figure 2 scenario: relative ordering of conflicting order workflows.

Three orders arrive: two for gaskets (conflicting — same part) and one for
blowers.  A relative-ordering requirement says conflicting orders must
Reserve and Schedule in arrival order, otherwise "a workflow processing an
earlier order may not be able to continue due to lack of resources".

The example runs the same scenario under all three control architectures
and shows (a) the ordering invariant holds everywhere and (b) what it
costs: zero messages under centralized control, engine broadcasts under
parallel control, AddRule/AddEvent exchanges under distributed control.

Run:  python examples/order_processing.py
"""

from repro import (
    CentralizedControlSystem,
    DistributedControlSystem,
    Mechanism,
    ParallelControlSystem,
    SystemConfig,
)
from repro.workloads import order_processing


def run(architecture):
    if architecture == "centralized":
        system = CentralizedControlSystem(SystemConfig(seed=9), num_agents=4)
    elif architecture == "parallel":
        system = ParallelControlSystem(SystemConfig(seed=9), num_engines=2,
                                       num_agents=4)
    else:
        system = DistributedControlSystem(SystemConfig(seed=9), num_agents=6,
                                          agents_per_step=2)
    order_processing({"gasket": 50, "blower": 50}).install(system)

    first = system.start_workflow("OrderProcessing",
                                  {"part": "gasket", "qty": 5}, delay=0.0)
    second = system.start_workflow("OrderProcessing",
                                   {"part": "gasket", "qty": 3}, delay=0.4)
    other = system.start_workflow("OrderProcessing",
                                  {"part": "blower", "qty": 2}, delay=0.1)
    system.run()

    times = {
        (record.detail["instance"], record.detail["step"]): record.time
        for record in system.trace.filter(kind="step.done")
    }
    print(f"--- {architecture} control ---")
    for label, instance in (("order#1 (gasket)", first),
                            ("order#2 (gasket)", second),
                            ("order#3 (blower)", other)):
        outcome = system.outcome(instance)
        print(f"  {label}: {outcome.status.value:9s} "
              f"Reserve done @ {times[(instance, 'Reserve')]:6.2f}  "
              f"Schedule done @ {times[(instance, 'Schedule')]:6.2f}")
    coordination = system.metrics.total_messages(Mechanism.COORDINATION)
    print(f"  coordination messages: {coordination}")

    assert times[(first, "Reserve")] < times[(second, "Reserve")]
    assert times[(first, "Schedule")] < times[(second, "Schedule")]
    return coordination


def main():
    costs = {arch: run(arch) for arch in ("centralized", "parallel", "distributed")}
    print()
    print("The FIFO invariant held under every architecture.  Message cost of")
    print("coordinated execution (paper Table 7's last column):")
    for architecture, cost in sorted(costs.items(), key=lambda kv: kv[1]):
        print(f"  {architecture:12s} {cost} messages")


if __name__ == "__main__":
    main()
